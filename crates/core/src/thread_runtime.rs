//! The native QSM machine: same programming model, real threads.
//!
//! [`ThreadMachine`] executes a QSM program on `p` host OS threads
//! with real wall-clock timing, through the identical engine, driver
//! and context as [`crate::SimMachine`] — so every algorithm written
//! once runs unmodified on both, produces the same
//! [`crate::PhaseRecord`] stream (κ and message accounting come from
//! the same `CommMatrix` metering), feeds the same observability
//! recorder, and yields a [`crate::CostReport`]. This is the
//! workspace's "run on actual parallel hardware" backend (the
//! paper's NOW/SMP role), used by the criterion benches.
//!
//! Timing units: the [`crate::PhaseTiming`] fields are
//! **nanoseconds** here (the `Cycles` newtype is reused as a plain
//! number container). The phase `compute` component is the interval
//! between the previous barrier release and the *last* worker's
//! `sync()` arrival; `comm` is the remainder of the phase — the
//! exchange processing plus barrier — exactly the quantity the
//! simulated backend prices with its network model.
//!
//! The [`crate::CostReport`] attached to a native run predicts with
//! the machine's *model configuration* (default:
//! `MachineConfig::paper_default(p)`), so predicted columns are in
//! simulated cycles while measured columns are host nanoseconds;
//! they share phase structure and traffic, not a unit. Use
//! [`ThreadMachine::with_model_config`] to predict against a
//! different reference machine.

use std::time::Instant;

use qsm_obs::{Recorder, Span, SpanKind};
use qsm_simnet::{Cycles, MachineConfig};

use crate::accounting::CostReport;
use crate::ctx::Ctx;
use crate::driver::{CommMatrix, PhaseRecord, PhaseTiming};
use crate::machine::{Machine, PhaseTimer, RunResult};
use crate::sim_timer::empty_sync_cost;

/// Wall-clock timer: phases are priced by elapsed real time, split
/// at the last worker's `sync()` arrival.
pub struct WallTimer {
    run_start: Instant,
    last_release: Instant,
    rec: Recorder,
    phase_idx: u64,
    /// Bank model of the machine's reference configuration: reported
    /// to the driver so per-bank traffic metering (observed bank-κ)
    /// also runs on the native backend. Wall-clock timing itself is
    /// never adjusted — real hardware queues for real.
    banks: Option<qsm_simnet::BankModel>,
    /// Set when the SPMD engine takes over per-worker span capture
    /// (`spmd_span_epoch`): the workers then emit fine-grained lane
    /// spans themselves and this timer's coarser per-processor
    /// compute/barrier spans would double-cover the same lanes.
    suppress_proc_spans: bool,
    /// Scratch for batching message-size observations under one
    /// recorder lock (reused across phases).
    msg_sizes: Vec<u64>,
}

impl WallTimer {
    /// A fresh timer emitting per-processor spans into `rec` (when
    /// the recorder captures at full level). Time zero is "now".
    pub fn with_recorder(rec: Recorder) -> Self {
        let now = Instant::now();
        Self {
            run_start: now,
            last_release: now,
            rec,
            phase_idx: 0,
            banks: None,
            suppress_proc_spans: false,
            msg_sizes: Vec::new(),
        }
    }

    /// Report `banks` to the driver as this machine's bank model.
    pub fn with_banks(mut self, banks: Option<qsm_simnet::BankModel>) -> Self {
        self.banks = banks;
        self
    }

    /// Nanoseconds from the run epoch to `t`, as a span timestamp.
    fn ns_since_start(&self, t: Instant) -> Cycles {
        Cycles::new(t.saturating_duration_since(self.run_start).as_nanos() as f64)
    }
}

impl PhaseTimer for WallTimer {
    fn price(
        &mut self,
        _charged: &[u64],
        matrix: &CommMatrix,
        arrivals: &[Instant],
    ) -> PhaseTiming {
        // Called by the driver after all workers arrived and data has
        // been applied; "now" is effectively the end of the exchange.
        let now = Instant::now();
        let elapsed = now.saturating_duration_since(self.last_release).as_nanos() as f64;
        // Compute ends when the last worker reaches sync(): the
        // machine-wide phase structure (as in the simulated backend,
        // where `compute` is the slowest processor's local work).
        let compute = arrivals
            .iter()
            .map(|&a| a.saturating_duration_since(self.last_release).as_nanos() as f64)
            .fold(0.0, f64::max)
            .min(elapsed);

        if self.rec.is_enabled() && !matrix.is_empty() {
            // Message sizes as the SPMD exchange moves them: one put
            // payload and one get reply per (src, dst) pair with
            // traffic. Metered from the deterministic `CommMatrix`,
            // so the histogram is byte-stable across job counts
            // (granularity differs from the simulated backend, which
            // records per wire message including headers).
            self.msg_sizes.clear();
            let sizes = &mut self.msg_sizes;
            matrix.for_each_dirty(|_src, _dst, t| {
                if t.put_payload_bytes > 0 {
                    sizes.push(t.put_payload_bytes);
                }
                if t.get_reply_payload_bytes > 0 {
                    sizes.push(t.get_reply_payload_bytes);
                }
            });
            self.rec.observe_iter("msg_size_bytes", self.msg_sizes.drain(..));
        }

        if self.rec.is_full() && !self.suppress_proc_spans && !arrivals.is_empty() {
            let phase = self.phase_idx;
            let release = self.ns_since_start(self.last_release);
            let end = self.ns_since_start(now);
            let spans = arrivals.iter().enumerate().flat_map(|(i, &a)| {
                let lane = i as u32;
                let arr = self.ns_since_start(a).max(release).min(end);
                [
                    // Per-processor lanes: local work until this
                    // worker's own arrival, then waiting on the
                    // exchange + barrier until the driver releases
                    // everyone (there is no per-processor comm-busy
                    // interval on this backend — the driver performs
                    // the exchange centrally).
                    Span {
                        kind: SpanKind::Compute,
                        phase,
                        lane,
                        start: release,
                        dur: arr - release,
                    },
                    Span { kind: SpanKind::BarrierWait, phase, lane, start: arr, dur: end - arr },
                ]
            });
            self.rec.spans(spans);
        }

        self.phase_idx += 1;
        self.last_release = now;
        PhaseTiming {
            elapsed: Cycles::new(elapsed),
            compute: Cycles::new(compute),
            comm: Cycles::new(elapsed - compute),
        }
    }

    fn bank_model(&self) -> Option<qsm_simnet::BankModel> {
        self.banks
    }

    /// The native backend opts in: hand the SPMD workers the run
    /// epoch so their spans share this timer's timeline (machine
    /// track and worker lanes line up in the trace), and stop
    /// emitting the coarse per-processor spans `price` would
    /// otherwise derive from arrivals.
    fn spmd_span_epoch(&mut self) -> Option<Instant> {
        self.suppress_proc_spans = true;
        Some(self.run_start)
    }
}

/// Result of one native run: the same [`RunResult`] every backend
/// produces (timing fields in nanoseconds). Kept as an alias for the
/// pre-unification spelling.
pub type ThreadRunResult<R> = RunResult<R>;

/// A native (host-thread) QSM machine.
#[derive(Debug, Clone, Copy)]
pub struct ThreadMachine {
    p: usize,
    seed: u64,
    check_conflicts: bool,
    model_cfg: MachineConfig,
}

impl ThreadMachine {
    /// Create a `p`-thread machine.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        Self {
            p,
            seed: 0x1998_0021,
            check_conflicts: true,
            model_cfg: MachineConfig::paper_default(p),
        }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disable the read/write-overlap phase check.
    pub fn with_conflict_check(mut self, check: bool) -> Self {
        self.check_conflicts = check;
        self
    }

    /// Replace the reference machine the [`CostReport`] predictions
    /// are computed against (default: the paper machine at this
    /// processor count). Predictions stay in that machine's cycles;
    /// measured values stay in host nanoseconds.
    pub fn with_model_config(mut self, cfg: MachineConfig) -> Self {
        assert_eq!(cfg.p, self.p, "model config processor count must match the machine");
        self.model_cfg = cfg;
        self
    }

    /// The reference machine used for model predictions.
    pub fn model_config(&self) -> &MachineConfig {
        &self.model_cfg
    }

    /// Number of threads.
    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// Run `program` on every thread. Equivalent to the generic
    /// [`Machine::run`]; kept inherent so callers need no trait
    /// import.
    pub fn run<R, F>(&self, program: F) -> RunResult<R>
    where
        R: Send,
        F: Fn(&mut Ctx) -> R + Send + Sync,
    {
        crate::engine::run(self, program)
    }
}

impl Machine for ThreadMachine {
    type Timer = WallTimer;

    fn nprocs(&self) -> usize {
        self.p
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn check_conflicts(&self) -> bool {
        self.check_conflicts
    }

    fn backend_name(&self) -> &'static str {
        "threads"
    }

    fn time_unit(&self) -> &'static str {
        "ns"
    }

    fn make_timer(&self, rec: Recorder) -> WallTimer {
        WallTimer::with_recorder(rec).with_banks(self.model_cfg.net.banks)
    }

    /// The native machine runs on the resident SPMD worker pool with
    /// the lock-free exchange: no driver thread, no per-run spawns.
    fn uses_worker_pool(&self) -> bool {
        true
    }

    fn make_report(&self, phases: &[PhaseRecord]) -> CostReport {
        CostReport::build(&self.model_cfg, phases, empty_sync_cost(self.model_cfg).get())
            .with_measured_unit("ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wall_timer_splits_compute_at_last_arrival() {
        let mut t = WallTimer::with_recorder(Recorder::disabled());
        let release = t.last_release;
        std::thread::sleep(Duration::from_millis(5));
        let arrivals = [release + Duration::from_millis(2), Instant::now()];
        let timing = t.price(&[0, 0], &CommMatrix::new(2), &arrivals);
        assert!(timing.elapsed.get() > 0.0);
        assert!(timing.compute.get() > 0.0, "compute must not be booked as comm");
        assert!(timing.comm.get() >= 0.0);
        let sum = timing.compute.get() + timing.comm.get();
        assert!((sum - timing.elapsed.get()).abs() < 1e-6);
        // The last arrival was "now": nearly the whole phase is
        // compute, and comm is only the (tiny) residual exchange.
        assert!(timing.compute > timing.comm);
    }

    #[test]
    fn wall_timer_with_no_arrivals_books_all_as_comm() {
        let mut t = WallTimer::with_recorder(Recorder::disabled());
        std::thread::sleep(Duration::from_millis(1));
        let timing = t.price(&[], &CommMatrix::new(1), &[]);
        assert_eq!(timing.compute.get(), 0.0);
        assert_eq!(timing.comm, timing.elapsed);
    }

    #[test]
    fn wall_timer_reports_model_bank_config() {
        use qsm_simnet::BankModel;
        let m = ThreadMachine::new(2).with_model_config(
            MachineConfig::paper_default(2).with_banks(BankModel::per_message(4, 100.0)),
        );
        let t = m.make_timer(Recorder::disabled());
        assert_eq!(t.bank_model().unwrap().banks_per_node, 4);
        assert_eq!(t.bank_wait(), Cycles::ZERO);
        // Without banks on the model config, the default stays off.
        let t = ThreadMachine::new(2).make_timer(Recorder::disabled());
        assert_eq!(t.bank_model(), None);
    }

    #[test]
    fn wall_timer_emits_per_processor_spans_at_full_level() {
        let rec = Recorder::new(qsm_obs::ObsLevel::Full, 1e9);
        let mut t = WallTimer::with_recorder(rec.clone());
        std::thread::sleep(Duration::from_millis(1));
        let arrivals = [Instant::now(), Instant::now()];
        let _ = t.price(&[0, 0], &CommMatrix::new(2), &arrivals);
        let data = rec.take().unwrap();
        for kind in [SpanKind::Compute, SpanKind::BarrierWait] {
            assert_eq!(data.spans.iter().filter(|s| s.kind == kind).count(), 2, "{kind:?}");
        }
    }

    #[test]
    fn spmd_epoch_hands_over_the_timeline_and_suppresses_proc_spans() {
        let rec = Recorder::new(qsm_obs::ObsLevel::Full, 1e9);
        let mut t = WallTimer::with_recorder(rec.clone());
        let epoch = t.spmd_span_epoch().expect("native timer opts in");
        assert_eq!(epoch, t.run_start, "workers must share the timer's epoch");
        let arrivals = [Instant::now(), Instant::now()];
        let _ = t.price(&[0, 0], &CommMatrix::new(2), &arrivals);
        let data = rec.take().unwrap();
        assert!(data.spans.is_empty(), "worker-side capture owns the lanes: {:?}", data.spans);
    }
}
