//! Extension experiment: does ignoring *network* contention matter?
//!
//! The paper notes its simulator "does not include network
//! contention" and relies on Brewer & Kuszmaul-style arguments that
//! bulk-synchronous programs keep the network tame. This experiment
//! adds the contention the paper left out — a shared fabric every
//! message serializes through, at a configurable bandwidth — and
//! measures how sample-sort communication responds.
//!
//! Expected shape: with a fabric at or above the aggregate NIC
//! bandwidth (`p` nodes × g cycles/byte → fabric gap ≤ g/p), nothing
//! changes; costs grow only once the fabric is provisioned *below*
//! what the endpoints can inject — i.e. the paper's omission is
//! harmless for balanced bulk-synchronous traffic unless the
//! bisection is undersized.

use qsm_algorithms::{gen, samplesort};
use qsm_core::SimMachine;
use qsm_simnet::MachineConfig;

use crate::output::{csv, table, us_at_400mhz};
use crate::{Report, RunCfg};

/// Fabric gaps swept, in cycles/byte machine-wide (plus the no-fabric
/// baseline). The per-NIC gap is 3 c/B, so `3/p` is "full bisection".
pub fn fabric_gaps(p: usize) -> Vec<Option<f64>> {
    let g = 3.0;
    vec![
        None,
        Some(g / p as f64),       // full bisection
        Some(2.0 * g / p as f64), // half bisection
        Some(g),                  // single-link bottleneck
        Some(4.0 * g),            // badly undersized
    ]
}

/// Run the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    crate::journal::set_figure("ext_fabric", cfg);
    crate::backend::warn_sim_only("ext_fabric");
    let n = if cfg.fast { 1 << 14 } else { 1 << 17 };
    let input = gen::random_u32s(n, 0xFAB);
    // Every fabric provisioning is an independent simulation of the
    // same input; the baseline row is simply the first result, so
    // ratios are computed after the fan-out.
    let gaps = fabric_gaps(cfg.p);
    let comms = crate::sweep::map(cfg.p, gaps.clone(), |_, fabric| {
        let mut machine_cfg = MachineConfig::paper_default(cfg.p);
        if let Some(f) = fabric {
            machine_cfg = machine_cfg.with_fabric(f);
        }
        samplesort::run_sim(&SimMachine::new(machine_cfg), &input).comm()
    });
    let base = comms[0];
    let rows: Vec<Vec<String>> = gaps
        .iter()
        .zip(&comms)
        .map(|(fabric, &comm)| {
            vec![
                fabric.map(|f| format!("{f:.3}")).unwrap_or_else(|| "none (paper)".into()),
                format!("{:.1}", us_at_400mhz(comm)),
                format!("{:.2}", comm / base),
            ]
        })
        .collect();
    let headers = ["fabric_gap_cyc_per_byte", "comm_us", "vs_no_fabric"];
    Report {
        id: "ext_fabric",
        title: "extension: shared-fabric contention vs sample-sort communication",
        text: table(&headers, &rows),
        csv: csv(&headers, &rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adequate_fabric_is_free_undersized_fabric_hurts() {
        let cfg = RunCfg::fast();
        let rep = run(&cfg);
        let ratios: Vec<f64> = rep
            .csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse().unwrap())
            .collect();
        // Full bisection: within a few percent of the paper's
        // contention-free simulator.
        assert!(ratios[1] < 1.10, "full bisection should be ~free: {ratios:?}");
        // Badly undersized fabric: clearly slower.
        assert!(ratios[4] > 1.5, "4x-undersized fabric should hurt: {ratios:?}");
        // Monotone in fabric gap.
        for w in ratios[1..].windows(2) {
            assert!(w[1] >= w[0] * 0.999, "ratios not monotone: {ratios:?}");
        }
    }
}
