//! # qsm-core — the bulk-synchronous QSM shared-memory runtime
//!
//! This crate is the Rust counterpart of the paper's shared-memory
//! library: remote memory is accessed with explicit [`Ctx::get`] /
//! [`Ctx::put`] calls that merely *enqueue* requests; all
//! communication happens inside [`Ctx::sync`], where the runtime
//! builds a communication plan, batches per-destination messages,
//! exchanges data in a contention-avoiding round order, and runs a
//! barrier — exactly the compiler-side of the QSM contract (Table 1
//! of the paper: hide `l` and `o` by pipelining and batching).
//!
//! Programs are ordinary Rust closures over a [`Ctx`] and run
//! unmodified on every [`Machine`] backend — one shared engine
//! (plan → exchange → price → record) with a per-backend
//! [`PhaseTimer`] deciding what each phase costs:
//!
//! * [`SimMachine`] — `p` simulated processors priced by the
//!   `qsm-simnet` network model; produces exact simulated cycle
//!   counts plus QSM/s-QSM/BSP/LogP predictions per run.
//! * [`ThreadMachine`] — `p` real host threads priced by the wall
//!   clock (nanoseconds), for actually-parallel execution.
//!
//! ## Example: one program, two backends
//!
//! Write the program once, generically over [`Machine`]; run it on
//! both machines; the outputs (and the phase structure, profile, and
//! traffic accounting) are identical — only the time unit differs.
//!
//! ```
//! use qsm_core::{Layout, Machine, SimMachine, ThreadMachine};
//! use qsm_simnet::MachineConfig;
//!
//! fn rotate<M: Machine>(machine: &M) -> Vec<u64> {
//!     let run = machine.run(|ctx| {
//!         let arr = ctx.register::<u64>("ring", ctx.nprocs(), Layout::Block);
//!         ctx.sync();
//!         let me = ctx.proc_id();
//!         ctx.put(&arr, me, &[me as u64 * 10]);
//!         ctx.sync();
//!         let t = ctx.get(&arr, (me + 1) % ctx.nprocs(), 1);
//!         ctx.sync();
//!         ctx.take(t)[0]
//!     });
//!     assert_eq!(run.num_phases(), 3);
//!     run.outputs
//! }
//!
//! let sim = SimMachine::new(MachineConfig::paper_default(4));
//! let threads = ThreadMachine::new(4);
//! assert_eq!(rotate(&sim), vec![10, 20, 30, 0]);
//! assert_eq!(rotate(&sim), rotate(&threads));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod accounting;
pub mod addr;
pub mod calibrate;
pub mod ctx;
mod driver;
mod engine;
pub mod knob;
pub mod machine;
pub mod obs;
pub mod ops;
// The channel-path runtime contains no unsafe at all; the SPMD
// threads engine and its worker pool are the two audited exceptions
// (barrier-bracketed shared slots, raw-syscall core pinning).
#[allow(unsafe_code)]
pub mod pool;
pub mod shmem;
pub mod sim_runtime;
mod sim_timer;
#[allow(unsafe_code)]
mod spmd;
pub mod tally;
pub mod thread_runtime;
pub mod word;

pub use accounting::{CostReport, ModelInputs};
pub use addr::{ArrayId, Layout};
pub use calibrate::EffectiveCosts;
pub use ctx::Ctx;
pub use driver::{CommMatrix, PairTraffic, PhaseRecord, PhaseTiming};
pub use machine::{AnyMachine, AnyTimer, Machine, PhaseTimer, RunResult};
pub use ops::GetTicket;
pub use shmem::SharedArray;
pub use sim_runtime::SimMachine;
pub use sim_timer::{empty_sync_cost, SimTimer};
pub use thread_runtime::{ThreadMachine, ThreadRunResult, WallTimer};
pub use word::Word;
