//! Runs the fault-injection (message loss + retry protocol) extension
//! experiment. Exits nonzero if the sweep had to drop points.
fn main() {
    let obs = qsm_bench::obs::ObsSink::from_env();
    let cfg = qsm_bench::RunCfg::from_env();
    qsm_bench::figures::ext_faults::run(&cfg).emit();
    obs.finalize();
    qsm_bench::sweep::exit_if_degraded();
}
