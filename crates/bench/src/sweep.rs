//! Parallel sweep executor.
//!
//! Every figure sweeps a grid of *independent* measurement points
//! (problem sizes, latencies, fabric gaps, …); each point builds its
//! own [`qsm_core::SimMachine`] from an explicit per-point seed, so
//! points share no state and can run concurrently. [`map`] fans the
//! points across a bounded pool of host threads and returns the
//! results **in input order** (each worker tags its result with the
//! point's index), so tables and CSVs are byte-identical to a serial
//! run regardless of completion order or worker count.
//!
//! The pool is sized by the `QSM_JOBS` environment variable; the
//! default is `available_parallelism() / p_sim` (minimum 1), because
//! every measurement point itself spawns `p_sim` simulated-processor
//! threads. `QSM_JOBS=1` recovers the serial executor exactly.
//!
//! Panics are handled per point: every point runs under
//! `catch_unwind`, so one exploding configuration never poisons the
//! executor's locks or takes down the points still in flight.
//! [`map`] finishes the whole grid and then re-raises the *first*
//! failing point's original panic payload; [`map_surviving`] instead
//! drops failed points from the result, records them in a
//! process-wide failure registry, and lets the caller emit a partial
//! artifact — binaries call [`exit_if_degraded`] last, so a degraded
//! run still exits nonzero. `QSM_PANIC_POINT=i` artificially fails
//! point `i` of every sweep (a drill for the degradation and
//! crash-resume paths, used by the CI smoke jobs).
//!
//! With `QSM_PROGRESS=1` each completed point reports its wall-clock
//! duration, the sweep's running completion count, and an ETA
//! extrapolated from the mean duration of the points completed so far
//! (divided by the worker count, since that many points run at once)
//! on stderr — stdout (tables) and the CSV artifacts are untouched,
//! so progress output never perturbs the deterministic results.
//!
//! With `QSM_RUN_LOG=path.jsonl` (see [`crate::journal`]) the
//! executor additionally keeps a durable per-point ledger: a
//! `sweep_claim` record when a point starts and a `sweep_point`
//! record — duration, per-point fault-tally deltas, the
//! [`Replay`]-encoded result, and ok/failed status — when it
//! completes. Setting `QSM_RESUME=1` on a rerun turns that ledger
//! into a checkpoint: points whose `ok` record matches the current
//! configuration fingerprint are *replayed* from the journal
//! (bit-exact, so every downstream artifact is byte-identical to an
//! uninterrupted run) and only the rest — failed, unfinished, or
//! fingerprint-mismatched points — are executed.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::replay::Replay;

/// Worker-pool size for sweeps whose points each simulate `p_sim`
/// processors: `QSM_JOBS` if set (minimum 1), else
/// `available_parallelism() / p_sim`, minimum 1. An unparseable
/// `QSM_JOBS` warns on stderr (once) and falls back to the default.
pub fn jobs(p_sim: usize) -> usize {
    if let Some(n) = crate::env_usize("QSM_JOBS") {
        return n.max(1);
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (cores / p_sim.max(1)).max(1)
}

/// Per-point duration/progress telemetry for one sweep, reporting to
/// stderr when `QSM_PROGRESS` is set (to anything but `0`). Inactive
/// it is a single boolean test per completed point.
struct Progress {
    enabled: bool,
    total: usize,
    /// Worker-pool size, for ETA extrapolation: `workers` points
    /// complete concurrently, so the remaining wall time is roughly
    /// `avg_point_ms * remaining / workers`.
    workers: usize,
    done: AtomicUsize,
    /// Sum of completed-point durations, in microseconds.
    spent_us: AtomicU64,
}

impl Progress {
    fn new(total: usize, workers: usize) -> Self {
        let enabled = std::env::var("QSM_PROGRESS").map(|v| v != "0").unwrap_or(false);
        Self { enabled, total, workers, done: AtomicUsize::new(0), spent_us: AtomicU64::new(0) }
    }

    /// Report point `i`'s completion (taking `ms`) with a running ETA
    /// extrapolated from the mean duration of the completed points.
    fn note(&self, i: usize, ms: f64) {
        let add_us = (ms * 1e3) as u64;
        let spent_us = self.spent_us.fetch_add(add_us, Ordering::Relaxed) + add_us;
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let remaining = self.total.saturating_sub(done);
        if remaining == 0 {
            eprintln!("[sweep {done}/{}] point {i} finished in {ms:.1} ms", self.total);
        } else {
            let avg_ms = spent_us as f64 / 1e3 / done as f64;
            let eta_s = avg_ms * remaining as f64 / self.workers.max(1) as f64 / 1e3;
            eprintln!(
                "[sweep {done}/{}] point {i} finished in {ms:.1} ms (eta {eta_s:.1} s)",
                self.total
            );
        }
    }
}

/// A sweep point that panicked, with the original payload preserved
/// so [`map`] can re-raise it unchanged.
pub struct PointPanic {
    /// Input-order index of the failed point.
    pub index: usize,
    /// Human-readable panic message (best effort: the `&str`/`String`
    /// payload, or a placeholder for exotic payloads).
    pub message: String,
    /// The original panic payload, untouched.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for PointPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointPanic")
            .field("index", &self.index)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Process-wide registry of sweep points dropped by
/// [`map_surviving`]; inspected by [`exit_if_degraded`].
static FAILURES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Number of sweep points dropped by [`map_surviving`] so far in this
/// process.
pub fn failed_points() -> usize {
    FAILURES.lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// If any [`map_surviving`] sweep dropped points, print a summary of
/// every failure on stderr and exit with status 1 — the artifacts
/// written so far are partial, and the process must say so. A no-op
/// on a fully successful run. Figure binaries call this last, after
/// emitting whatever survived.
pub fn exit_if_degraded() {
    let failures = FAILURES.lock().unwrap_or_else(|e| e.into_inner());
    if failures.is_empty() {
        return;
    }
    eprintln!("error: {} sweep point(s) failed; emitted results are partial:", failures.len());
    for f in failures.iter() {
        eprintln!("  - {f}");
    }
    std::process::exit(1);
}

/// Run `f` over every item under a per-point `catch_unwind`, in input
/// order: `out[i]` is point `i`'s result or its captured panic. The
/// machinery shared by [`map`] and [`map_surviving`].
///
/// With an active run journal and `QSM_RESUME=1`, points already
/// completed under the same configuration fingerprint are replayed
/// from the journal instead of executed (see [`crate::journal`]).
pub fn try_map<I, T, F>(p_sim: usize, items: Vec<I>, f: F) -> Vec<Result<T, PointPanic>>
where
    I: Send,
    T: Send + Replay,
    F: Fn(usize, I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs(p_sim).min(n.max(1));
    let journal_on = crate::journal::active();
    // Resume: decode every replayable completed point before spending
    // any work. A record that fails to decode (schema drift from an
    // older build) is simply re-run — replay is an optimization, never
    // a correctness dependency.
    // (`resume_requested` owns the journal check, so asking for a
    // resume with no usable journal warns instead of silently
    // re-running everything.)
    let mut replayed: HashMap<usize, T> = HashMap::new();
    if crate::journal::resume_requested() {
        for (i, fields) in crate::journal::load_replay(n) {
            if let Some(v) = T::decode_fields(&fields) {
                replayed.insert(i, v);
            }
        }
        eprintln!(
            "[sweep] resume: replaying {}/{n} completed points from the run journal",
            replayed.len()
        );
    }
    let progress = Progress::new(n - replayed.len(), workers);
    let drill = crate::env_usize("QSM_PANIC_POINT");
    let run_point = |i: usize, item: I| {
        // Timing and tally snapshots only when someone consumes them
        // (`QSM_PROGRESS` or `QSM_RUN_LOG`); the default path stays a
        // bare catch_unwind around `f`.
        let start = (progress.enabled || journal_on).then(Instant::now);
        let tally0 = journal_on.then(qsm_core::tally::snapshot);
        if journal_on {
            // Claim the point before running it: a claim without a
            // matching completion marks where a crashed run died.
            crate::journal::record_claim(i, n);
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if Some(i) == drill {
                panic!("artificial failure injected by QSM_PANIC_POINT={i}");
            }
            f(i, item)
        }))
        .map_err(|payload| PointPanic {
            index: i,
            message: panic_message(&payload),
            payload,
        });
        let ms = start.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1e3);
        if progress.enabled {
            progress.note(i, ms);
        }
        if let Some((r0, d0)) = tally0 {
            // The point ran entirely on this thread, so the calling
            // thread's tally delta is exactly this point's fault count.
            let (r1, d1) = qsm_core::tally::snapshot();
            crate::journal::record_point(&crate::journal::PointRecord {
                index: i,
                total: n,
                jobs: workers,
                duration_ms: ms,
                retries: r1.wrapping_sub(r0),
                dropped_msgs: d1.wrapping_sub(d0),
                result: result.as_ref().ok().map(Replay::encode_fields),
                error: result.as_ref().err().map(|p| p.message.as_str()),
            });
        }
        result
    };
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| match replayed.remove(&i) {
                Some(t) => Ok(t),
                None => run_point(i, item),
            })
            .collect();
    }

    // Work-stealing over the index space: a shared cursor hands out
    // the next pending point, each slot's item moves to exactly one
    // worker, and the result lands back in the slot of the same
    // index. No ordering assumptions anywhere — only the final
    // index-ordered drain. Worker closures cannot unwind (every point
    // runs inside `catch_unwind`), so the slot locks are never
    // poisoned.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<Result<T, PointPanic>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    // Replayed points are pre-filled results; workers skip them.
    for (i, t) in replayed {
        *results[i].lock().expect("sweep result lock poisoned") = Some(Ok(t));
    }
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if results[i].lock().expect("sweep result lock poisoned").is_some() {
                    continue; // replayed from the journal
                }
                let item = slots[i]
                    .lock()
                    .expect("sweep item lock poisoned")
                    .take()
                    .expect("sweep item taken twice");
                let out = run_point(i, item);
                *results[i].lock().expect("sweep result lock poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result lock poisoned")
                .expect("sweep point produced no result")
        })
        .collect()
}

/// Run `f` over every item of the sweep grid on a pool of
/// [`jobs`]`(p_sim)` worker threads and collect the results in input
/// order. `f` receives `(index, item)`; any per-point seed must be
/// derived from those (the figure modules use
/// [`crate::RunCfg::seed`]), never from shared mutable state.
///
/// With one worker (or one item) the items are executed inline on the
/// calling thread in input order — the serial executor. If any point
/// panics, the remaining points still run to completion, then the
/// **first** (lowest-index) failing point's original panic payload is
/// re-raised on the calling thread.
pub fn map<I, T, F>(p_sim: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send + Replay,
    F: Fn(usize, I) -> T + Sync,
{
    let mut out = Vec::new();
    let mut first_failure: Option<PointPanic> = None;
    for r in try_map(p_sim, items, f) {
        match r {
            Ok(t) => out.push(t),
            Err(p) => {
                if first_failure.is_none() {
                    first_failure = Some(p);
                }
            }
        }
    }
    if let Some(p) = first_failure {
        eprintln!("error: sweep point {} panicked: {}", p.index, p.message);
        std::panic::resume_unwind(p.payload);
    }
    out
}

/// Like [`map`], but degrade gracefully: failed points are dropped
/// from the result — returned as `(input index, result)` pairs so
/// survivors keep their grid coordinates — reported on stderr, and
/// recorded for [`exit_if_degraded`]. For sweeps whose points are
/// fully independent rows, this turns one exploding configuration
/// into a partial artifact instead of a lost run.
///
/// `QSM_PANIC_POINT=i` (handled in [`try_map`], so it also covers
/// [`map`]-based sweeps) injects an artificial panic at point `i`, a
/// drill for this degradation path.
pub fn map_surviving<I, T, F>(p_sim: usize, items: Vec<I>, f: F) -> Vec<(usize, T)>
where
    I: Send,
    T: Send + Replay,
    F: Fn(usize, I) -> T + Sync,
{
    let results = try_map(p_sim, items, f);
    let mut out = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(t) => out.push((i, t)),
            Err(p) => {
                eprintln!("warning: sweep point {i} failed ({}); continuing without it", p.message);
                FAILURES
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(format!("point {i}: {}", p.message));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = map(1, (0..64).collect(), |i, x: i32| {
            assert_eq!(i as i32, x);
            x * 10
        });
        assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<i32> = map(1, Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        // Force a multi-worker pool regardless of host cores by going
        // through the internal path `map` takes when jobs > 1: run
        // with the env knob set in-process is racy across tests, so
        // compare against the inline serial computation instead.
        let serial: Vec<u64> = (0..40u64).map(|x| x.wrapping_mul(0x9E37)).collect();
        let parallel = map(1, (0..40u64).collect(), |_, x| x.wrapping_mul(0x9E37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs(1) >= 1);
        assert!(jobs(1024) >= 1);
    }

    #[test]
    fn try_map_captures_panics_per_point() {
        let results = try_map(1, (0..8).collect(), |_, x: i32| {
            if x % 3 == 1 {
                panic!("boom at {x}");
            }
            x * 2
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i % 3 == 1 {
                let p = r.as_ref().expect_err("point should have failed");
                assert_eq!(p.index, i);
                assert_eq!(p.message, format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as i32) * 2);
            }
        }
    }

    #[test]
    fn map_reraises_the_first_panic_payload() {
        // A typed payload (not a string) must come back downcastable:
        // the original Box<dyn Any>, not a summary of it.
        #[derive(Debug, PartialEq)]
        struct Custom(u32);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map(1, (0..6).collect(), |_, x: u32| {
                if x >= 2 {
                    std::panic::panic_any(Custom(x));
                }
                x
            })
        }))
        .expect_err("map should re-raise");
        let c = caught.downcast_ref::<Custom>().expect("payload type lost");
        assert_eq!(*c, Custom(2), "first failing point's payload, not a later one");
    }

    #[test]
    fn map_surviving_drops_failures_and_registers_them() {
        let before = failed_points();
        let out = map_surviving(1, (0..10).collect(), |_, x: i32| {
            if x == 4 || x == 7 {
                panic!("unstable point {x}");
            }
            x
        });
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 5, 6, 8, 9]);
        for &(i, v) in &out {
            assert_eq!(v as usize, i);
        }
        assert_eq!(failed_points() - before, 2);
    }
}
