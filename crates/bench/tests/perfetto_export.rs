//! End-to-end trace export from real simulated runs: the Perfetto
//! JSON must be well formed with one named track per processor, and
//! the per-phase comm spans must sum (in phase order) to exactly the
//! `measured_comm` of the run's [`qsm_core::CostReport`] — both in
//! the capture and after a JSON round-trip of `args.cycles`.
//!
//! This file contains exactly one `#[test]` on purpose: the recorder
//! slot is process-global and first-install-wins, so a sibling test
//! in the same binary would race on the shared capture.

use qsm_algorithms::{gen, prefix};
use qsm_core::obs::{self, ObsLevel, Recorder};
use qsm_core::SimMachine;
use qsm_obs::SpanKind;
use qsm_simnet::MachineConfig;

fn cycles_arg(line: &str) -> f64 {
    let rest = line.split("\"cycles\":").nth(1).expect("span line carries args.cycles");
    rest[..rest.find('}').unwrap()].parse().unwrap()
}

#[test]
fn real_run_export_parses_and_comm_spans_sum_to_measured_comm() {
    assert!(obs::install(Recorder::new(ObsLevel::Full, 400e6)));
    let rec = obs::recorder();

    // A 2-processor prefix-sums run exports a well-formed trace with
    // one named track per processor, carrying actual spans.
    let machine = SimMachine::new(MachineConfig::paper_default(2));
    prefix::run_sim(&machine, &gen::random_u64s(1 << 10, 42));
    let data = rec.take().expect("recorder is installed");
    assert_eq!(data.nprocs, 2);
    let j = data.to_perfetto_json();
    assert!(j.starts_with('[') && j.ends_with(']'));
    assert_eq!(j.matches('{').count(), j.matches('}').count());
    assert_eq!(j.matches('[').count(), j.matches(']').count());
    for p in 0..2u32 {
        assert!(
            j.contains(&format!(r#""args":{{"name":"proc {p}"}}"#)),
            "missing thread_name for processor {p}"
        );
        let has_spans = j.lines().any(|l| {
            l.contains(r#""ph":"X""#)
                && l.contains(r#""pid":1"#)
                && l.contains(&format!(r#""tid":{p},"#))
        });
        assert!(has_spans, "processor {p} track has no spans");
    }
    // Barrier legs ride the wire process like any other message.
    assert!(j.contains("Barrier"), "barrier legs missing from wire track");

    // On a p=8 run the phase-comm spans reproduce measured_comm
    // exactly: durations are copied verbatim from the phase timings
    // and summed in the same (phase) order as CostReport.
    let machine = SimMachine::new(MachineConfig::paper_default(8));
    let r = prefix::run_sim(&machine, &gen::random_u64s(1 << 12, 7));
    let data = rec.take().expect("recorder is installed");
    let measured = r.run.report.measured_comm.get();
    let sum: f64 =
        data.spans.iter().filter(|s| s.kind == SpanKind::PhaseComm).map(|s| s.dur.get()).sum();
    assert_eq!(sum, measured, "captured comm spans disagree with CostReport");

    let j = data.to_perfetto_json();
    let sum_json: f64 = j
        .lines()
        .filter(|l| l.contains(r#"comm","ph":"X""#) && l.contains(r#""pid":0"#))
        .map(cycles_arg)
        .sum();
    assert_eq!(sum_json, measured, "args.cycles does not round-trip the comm spans");
}
