//! Global addressing and data layout.
//!
//! A shared array is a dense range of global indices `0..len`. A
//! [`Layout`] maps each index to its *cost owner* — the processor
//! whose memory module is charged for serving accesses to it:
//!
//! * [`Layout::Block`] — index `i` belongs to the processor holding
//!   the `i`-th slot of an even block partition. Local accesses to
//!   one's own block are free; this is the layout of the paper's
//!   algorithm inputs ("distributed uniformly across the processors").
//! * [`Layout::Hashed`] — index `i` belongs to
//!   `hash(array, i) mod p`. This is the QSM implementation
//!   contract's *randomized layout*: it destroys locality but spreads
//!   contention evenly across memory modules.
//!
//! Physical storage is always block-partitioned; the layout is a cost
//! attribute only (see DESIGN.md §2 for why this substitution is
//! behaviour-preserving).

/// Identifier of a registered shared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// How an array's indices map to cost owners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Even contiguous blocks, one per processor.
    Block,
    /// Pseudo-random placement by multiplicative hashing.
    Hashed,
}

/// Block partition: the global index range owned by `proc` in an
/// array of `len` elements across `p` processors. The first
/// `len mod p` processors receive one extra element.
pub fn block_range(len: usize, p: usize, proc: usize) -> std::ops::Range<usize> {
    assert!(proc < p);
    let base = len / p;
    let rem = len % p;
    let start = proc * base + proc.min(rem);
    let extent = base + usize::from(proc < rem);
    start..(start + extent).min(len)
}

/// Inverse of [`block_range`]: which processor's block contains
/// global index `idx`.
pub fn block_owner(len: usize, p: usize, idx: usize) -> usize {
    assert!(idx < len, "index {idx} out of bounds {len}");
    let base = len / p;
    let rem = len % p;
    let boundary = rem * (base + 1);
    if idx < boundary {
        idx / (base + 1)
    } else {
        rem + (idx - boundary) / base.max(1)
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used for hashed
/// layout; good avalanche, trivially reproducible.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Cost owner of `idx` in array `id` under `layout`.
pub fn owner(layout: Layout, id: ArrayId, len: usize, p: usize, idx: usize) -> usize {
    match layout {
        Layout::Block => block_owner(len, p, idx),
        Layout::Hashed => (mix64((id.0 as u64) << 40 | idx as u64) % p as u64) as usize,
    }
}

/// Visit the maximal single-cost-owner runs of the global range
/// `start..start+len` in ascending index order, as
/// `(owner, run_start, run_len)` calls. Block layouts yield at most
/// `p` runs; hashed layouts typically yield per-element runs.
///
/// This is the allocation-free core of [`split_by_owner`]; the
/// driver's metering and put/get paths call it once per queued
/// operation, so it must not build a `Vec` per call.
pub fn for_each_owner_run(
    layout: Layout,
    id: ArrayId,
    array_len: usize,
    p: usize,
    start: usize,
    len: usize,
    mut visit: impl FnMut(usize, usize, usize),
) {
    assert!(start + len <= array_len, "range {start}+{len} exceeds array {array_len}");
    match layout {
        Layout::Block => {
            let mut i = start;
            while i < start + len {
                let o = block_owner(array_len, p, i);
                let block_end = block_range(array_len, p, o).end;
                let run_end = (start + len).min(block_end);
                visit(o, i, run_end - i);
                i = run_end;
            }
        }
        Layout::Hashed => {
            let mut i = start;
            while i < start + len {
                let o = owner(layout, id, array_len, p, i);
                let mut j = i + 1;
                while j < start + len && owner(layout, id, array_len, p, j) == o {
                    j += 1;
                }
                visit(o, i, j - i);
                i = j;
            }
        }
    }
}

/// [`for_each_owner_run`] collected into a fresh `Vec`. Convenient
/// for tests and one-off callers; hot paths should use the visitor
/// form directly.
pub fn split_by_owner(
    layout: Layout,
    id: ArrayId,
    array_len: usize,
    p: usize,
    start: usize,
    len: usize,
) -> Vec<(usize, usize, usize)> {
    let mut runs: Vec<(usize, usize, usize)> = Vec::new();
    for_each_owner_run(layout, id, array_len, p, start, len, |o, s, l| runs.push((o, s, l)));
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_tile_the_array() {
        for (len, p) in [(16, 4), (17, 4), (3, 8), (100, 7), (0, 3), (1, 1)] {
            let mut covered = 0;
            for proc in 0..p {
                let r = block_range(len, p, proc);
                assert_eq!(r.start, covered, "gap before proc {proc} (len={len}, p={p})");
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn remainder_goes_to_leading_procs() {
        assert_eq!(block_range(10, 4, 0), 0..3);
        assert_eq!(block_range(10, 4, 1), 3..6);
        assert_eq!(block_range(10, 4, 2), 6..8);
        assert_eq!(block_range(10, 4, 3), 8..10);
    }

    #[test]
    fn block_owner_inverts_block_range() {
        for (len, p) in [(16usize, 4usize), (17, 4), (100, 7), (5, 8), (1, 1)] {
            for idx in 0..len {
                let o = block_owner(len, p, idx);
                assert!(block_range(len, p, o).contains(&idx), "len={len} p={p} idx={idx}");
            }
        }
    }

    #[test]
    fn hashed_owner_is_deterministic_and_spread() {
        let id = ArrayId(3);
        let p = 8;
        let len = 8000;
        let mut counts = vec![0usize; p];
        for idx in 0..len {
            let a = owner(Layout::Hashed, id, len, p, idx);
            let b = owner(Layout::Hashed, id, len, p, idx);
            assert_eq!(a, b);
            counts[a] += 1;
        }
        let expect = len / p;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (*c as f64) > 0.8 * expect as f64 && (*c as f64) < 1.2 * expect as f64,
                "owner {i} got {c} of ~{expect}"
            );
        }
    }

    #[test]
    fn different_arrays_hash_differently() {
        let p = 16;
        let same = (0..1000)
            .filter(|&i| {
                owner(Layout::Hashed, ArrayId(0), 1000, p, i)
                    == owner(Layout::Hashed, ArrayId(1), 1000, p, i)
            })
            .count();
        // Two independent placements agree ~1/p of the time.
        assert!(same < 200, "placements too correlated: {same}/1000");
    }

    #[test]
    fn split_block_produces_contiguous_owner_runs() {
        let runs = split_by_owner(Layout::Block, ArrayId(0), 100, 7, 10, 50);
        let total: usize = runs.iter().map(|r| r.2).sum();
        assert_eq!(total, 50);
        assert!(runs.len() <= 7);
        let mut pos = 10;
        for (o, s, l) in &runs {
            assert_eq!(*s, pos);
            for i in *s..*s + *l {
                assert_eq!(block_owner(100, 7, i), *o);
            }
            pos += l;
        }
    }

    #[test]
    fn split_hashed_covers_range_exactly() {
        let runs = split_by_owner(Layout::Hashed, ArrayId(9), 64, 4, 5, 20);
        let total: usize = runs.iter().map(|r| r.2).sum();
        assert_eq!(total, 20);
        let mut pos = 5;
        for (o, s, l) in &runs {
            assert_eq!(*s, pos);
            for i in *s..*s + *l {
                assert_eq!(owner(Layout::Hashed, ArrayId(9), 64, 4, i), *o);
            }
            pos += l;
        }
    }

    #[test]
    fn empty_split_is_empty() {
        assert!(split_by_owner(Layout::Block, ArrayId(0), 10, 2, 4, 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_split_rejected() {
        let _ = split_by_owner(Layout::Block, ArrayId(0), 10, 2, 8, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn block_owner_total(len in 1usize..10_000, p in 1usize..64, seed in 0usize..10_000) {
            let idx = seed % len;
            let o = block_owner(len, p, idx);
            prop_assert!(o < p);
            prop_assert!(block_range(len, p, o).contains(&idx));
        }

        #[test]
        fn splits_partition_any_range(
            len in 1usize..5_000,
            p in 1usize..32,
            a in 0usize..5_000,
            b in 0usize..5_000,
            hashed in proptest::bool::ANY,
        ) {
            let start = a % len;
            let l = b % (len - start + 1);
            let layout = if hashed { Layout::Hashed } else { Layout::Block };
            let runs = split_by_owner(layout, ArrayId(7), len, p, start, l);
            let total: usize = runs.iter().map(|r| r.2).sum();
            prop_assert_eq!(total, l);
            let mut pos = start;
            for (o, s, rl) in runs {
                prop_assert_eq!(s, pos);
                prop_assert!(o < p);
                prop_assert!(rl > 0);
                pos += rl;
            }
        }
    }
}
