//! Figure 5: problem size needed for accuracy vs latency l.
//!
//! For each hardware latency, the smallest n at which the measured
//! sample-sort communication falls inside the [Best-case, WHP-bound]
//! band (operationally: at or below the WHP line, since measured
//! always sits above Best). Expected shape: n_cross grows *linearly*
//! in l — the paper's pipelining condition `(l/g)·π ≪ W/p` made
//! empirical.

use qsm_algorithms::analysis::EffectiveParams;
use qsm_models::nmin::{linear_fit, r_squared};
use qsm_simnet::MachineConfig;

use crate::figures::{fig4, samplesort_crossover};
use crate::output::{csv, table};
use crate::{Report, RunCfg};

/// Compute the crossover points for every latency. Returns
/// `(l, Some(n_cross))` rows.
pub fn crossovers(cfg: &RunCfg) -> Vec<(f64, Option<f64>)> {
    // The prediction band comes from the default machine and is the
    // same for every latency; each latency's doubling scan is then an
    // independent sweep point.
    let params = EffectiveParams::measure(MachineConfig::paper_default(cfg.p));
    crate::sweep::map(cfg.p, fig4::latencies(cfg.fast), |_, l| {
        let machine_cfg = MachineConfig::paper_default(cfg.p).with_latency(l);
        (l, samplesort_crossover(machine_cfg, cfg, &params))
    })
}

/// Run the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    crate::journal::set_figure("fig5", cfg);
    crate::backend::warn_sim_only("fig5");
    let points = crossovers(cfg);
    let mut rows = Vec::new();
    let mut fit_pts = Vec::new();
    for (l, cross) in &points {
        match cross {
            Some(n) => {
                rows.push(vec![
                    format!("{l:.0}"),
                    format!("{n:.0}"),
                    format!("{:.0}", n / cfg.p as f64),
                ]);
                fit_pts.push((*l, *n));
            }
            None => rows.push(vec![format!("{l:.0}"), "beyond sweep".into(), "-".into()]),
        }
    }
    let mut text = table(&["latency_cyc", "n_cross", "n_cross_per_proc"], &rows);
    if fit_pts.len() >= 2 {
        let (slope, intercept) = linear_fit(&fit_pts);
        let r2 = r_squared(&fit_pts, slope, intercept);
        text.push_str(&format!(
            "\nlinear fit: n_cross = {slope:.2}·l + {intercept:.0}   (R² = {r2:.3})\n"
        ));
    }
    Report {
        id: "fig5",
        title: "problem size for measured comm to enter the [Best,WHP] band vs latency",
        text,
        csv: csv(&["latency_cyc", "n_cross", "n_cross_per_proc"], &rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_grows_with_latency() {
        let cfg = RunCfg::fast();
        let pts = crossovers(&cfg);
        let found: Vec<(f64, f64)> = pts.iter().filter_map(|(l, c)| c.map(|n| (*l, n))).collect();
        assert!(found.len() >= 2, "crossovers should exist in the sweep: {pts:?}");
        // Monotone non-decreasing in l.
        for w in found.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.9, "crossover shrank with latency: {:?}", found);
        }
    }
}
