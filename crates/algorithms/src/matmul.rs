//! Dense matrix multiplication (row-block distribution).
//!
//! The locality showcase: QSM's `g` parameter is there precisely to
//! make algorithms like this one think about data movement. With
//! `C = A·B` on `n×n` matrices row-block distributed over `p`
//! processors, each processor already owns its rows of `A` and `C`
//! but needs *all* of `B`: it fetches `B`'s row blocks from the other
//! processors round-robin (one get per round, latin-square order so
//! no owner is hot), multiplying as blocks arrive. Communication is
//! `Θ(g·n²·(p-1)/p)` words per processor against `Θ(n³/p)` local
//! work, so the comm/compute ratio falls as `1/n` — the crossover
//! sits at `n ≈ g_eff·(p-1)` (large under this 1998 library's
//! word-granular effective gap, small on machines with cheap bulk
//! transfers). Phases: `p` rounds (one get + sync each).

use qsm_core::{Ctx, Layout, Machine, RunResult, SimMachine, ThreadMachine, ThreadRunResult};

use crate::analysis::{EffectiveParams, Prediction};

/// Setup phases before the measured rounds.
pub const SETUP_PHASES: usize = 2;

/// Column-tile width of the multiply kernel: a `C`-row tile and the
/// matching `B`-row tiles stay cache-resident across the whole `k`
/// sweep of a block. Per output element the `k` accumulation order is
/// unchanged (ascending), so results are bitwise identical to the
/// untiled loop.
const J_TILE: usize = 512;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension (square).
    pub n: usize,
    /// Row-major data, `n * n` entries.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Create from row-major data.
    pub fn new(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        Self { n, data }
    }

    /// Entry (r, c).
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Deterministic pseudo-random test matrix.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let data = (0..n * n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 1000) as f64 / 100.0 - 5.0
            })
            .collect();
        Self { n, data }
    }
}

/// Sequential oracle: naive `O(n³)` multiply.
pub fn matmul_seq(a: &Matrix, b: &Matrix) -> Matrix {
    let n = a.n;
    assert_eq!(b.n, n);
    let mut c = vec![0.0f64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a.at(i, k);
            for j in 0..n {
                c[i * n + j] += aik * b.at(k, j);
            }
        }
    }
    Matrix::new(n, c)
}

/// Rows owned by `proc` (padded row space: `rows_pp` each).
fn row_span(n: usize, p: usize, proc: usize) -> (usize, usize) {
    let rows_pp = n.div_ceil(p);
    let r0 = (proc * rows_pp).min(n);
    let r1 = ((proc + 1) * rows_pp).min(n);
    (r0, r1)
}

fn program(ctx: &mut Ctx, a: &Matrix, b: &Matrix) -> Vec<f64> {
    let n = a.n;
    let p = ctx.nprocs();
    let me = ctx.proc_id();

    // Pad the row space so block ownership is row-aligned: the
    // shared arrays hold `rows_pp · p` rows, the trailing ones zero.
    let rows_pp = n.div_ceil(p);
    let padded = rows_pp * p * n;

    // --- Setup (uncounted): distribute A and B by row blocks. ---
    let a_arr = ctx.register::<f64>("mm.a", padded, Layout::Block);
    let b_arr = ctx.register::<f64>("mm.b", padded, Layout::Block);
    ctx.sync();
    let (r0, r1) = row_span(n, p, me);
    if r0 < r1 {
        ctx.local_write(&a_arr, r0 * n, &a.data[r0 * n..r1 * n]);
        ctx.local_write(&b_arr, r0 * n, &b.data[r0 * n..r1 * n]);
    }
    ctx.sync();

    let my_rows = r1 - r0;
    let a_local =
        if my_rows > 0 { ctx.local_read(&a_arr, r0 * n, my_rows * n) } else { Vec::new() };
    let mut c_local = vec![0.0f64; my_rows * n];

    // --- p rounds: fetch B's row block from owner (me + r) mod p
    //     (latin-square order: no hot owner), multiply as it lands. ---
    for r in 0..p {
        let owner = (me + r) % p;
        let (k0, k1) = row_span(n, p, owner);
        let block: Vec<f64> = if owner == me {
            let blk =
                if k0 < k1 { ctx.local_read(&b_arr, k0 * n, (k1 - k0) * n) } else { Vec::new() };
            ctx.sync(); // keep the phase structure collective
            blk
        } else {
            let t = if k0 < k1 { Some(ctx.get(&b_arr, k0 * n, (k1 - k0) * n)) } else { None };
            ctx.sync();
            t.map(|t| ctx.take(t)).unwrap_or_default()
        };
        // C[i][j] += A[i][k] · B[k][j] for the k-rows in this block,
        // column-tiled so the C tile survives in cache across the k
        // sweep (k stays innermost and ascending per element).
        let mut flops = 0u64;
        for i in 0..my_rows {
            let arow = &a_local[i * n..(i + 1) * n];
            let crow = &mut c_local[i * n..(i + 1) * n];
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + J_TILE).min(n);
                for k in k0..k1 {
                    let aik = arow[k];
                    let btile = &block[(k - k0) * n + j0..(k - k0) * n + j1];
                    for (cj, bj) in crow[j0..j1].iter_mut().zip(btile) {
                        *cj += aik * bj;
                    }
                }
                j0 = j1;
            }
            flops += ((k1 - k0) * n) as u64;
        }
        ctx.charge(2 * flops);
    }
    c_local
}

/// Result of a matmul run.
#[derive(Debug)]
pub struct MatMulRun {
    /// The product matrix.
    pub c: Matrix,
    /// The raw run.
    pub run: RunResult<Vec<f64>>,
}

impl MatMulRun {
    /// Measured communication cycles over the algorithm's rounds.
    pub fn comm(&self) -> f64 {
        self.run.phases[SETUP_PHASES..].iter().map(|r| r.timing.comm.get()).sum()
    }

    /// Measured compute cycles over the algorithm's rounds.
    pub fn compute(&self) -> f64 {
        self.run.phases[SETUP_PHASES..].iter().map(|r| r.timing.compute.get()).sum()
    }
}

/// Run on any [`Machine`] backend.
pub fn run_on<M: Machine>(machine: &M, a: &Matrix, b: &Matrix) -> MatMulRun {
    let n = a.n;
    let run = machine.run(|ctx| program(ctx, a, b));
    let data = run.outputs.iter().flatten().copied().collect();
    MatMulRun { c: Matrix::new(n, data), run }
}

/// Run on the simulated machine.
pub fn run_sim(machine: &SimMachine, a: &Matrix, b: &Matrix) -> MatMulRun {
    run_on(machine, a, b)
}

/// Run on the native thread machine.
pub fn run_threads(
    machine: &ThreadMachine,
    a: &Matrix,
    b: &Matrix,
) -> (Matrix, ThreadRunResult<Vec<f64>>) {
    let r = run_on(machine, a, b);
    (r.c, r.run)
}

/// QSM prediction: each processor fetches `n²·(p-1)/p` f64 elements
/// (2 accounting words each) over `p` single-get phases.
pub fn predict(n: usize, params: &EffectiveParams) -> Prediction {
    let p = params.p as f64;
    let words = 2.0 * (n * n) as f64 * (p - 1.0) / p;
    Prediction::from_qsm(params.g_get * words, params.p, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsm_simnet::MachineConfig;

    fn machine(p: usize) -> SimMachine {
        SimMachine::new(MachineConfig::paper_default(p))
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.n, b.n);
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_sequential_oracle() {
        for (n, p) in [(8, 2), (16, 4), (12, 3), (16, 1)] {
            let a = Matrix::random(n, 1);
            let b = Matrix::random(n, 2);
            let run = run_sim(&machine(p), &a, &b);
            assert_close(&run.c, &matmul_seq(&a, &b));
        }
    }

    #[test]
    fn identity_is_neutral() {
        let n = 12;
        let a = Matrix::random(n, 3);
        let mut id = vec![0.0; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let run = run_sim(&machine(4), &a, &Matrix::new(n, id));
        assert_close(&run.c, &a);
    }

    #[test]
    fn rows_not_divisible_by_p() {
        let n = 10; // 100 elements over 3 procs: ragged blocks
        let a = Matrix::random(n, 4);
        let b = Matrix::random(n, 5);
        let run = run_sim(&machine(3), &a, &b);
        assert_close(&run.c, &matmul_seq(&a, &b));
    }

    #[test]
    fn comm_to_compute_ratio_falls_with_n() {
        // The locality story: compute Θ(n³/p) vs comm Θ(n²), so the
        // communication share shrinks like 1/n as matrices grow.
        let ratio = |n: usize| {
            let a = Matrix::random(n, 6);
            let b = Matrix::random(n, 7);
            let run = run_sim(&machine(4), &a, &b);
            run.comm() / run.compute()
        };
        let small = ratio(16);
        let large = ratio(64);
        assert!(
            large < small / 2.0,
            "comm/compute should fall ~4x over a 4x n: {small} -> {large}"
        );
    }

    #[test]
    fn prediction_tracks_measured_comm() {
        let n = 48;
        let a = Matrix::random(n, 8);
        let b = Matrix::random(n, 9);
        let m = machine(4);
        let run = run_sim(&m, &a, &b);
        let params = EffectiveParams::measure(*m.config());
        let pred = predict(n, &params);
        let err = (run.comm() - pred.bsp).abs() / run.comm();
        assert!(err < 0.35, "BSP prediction error {err}");
    }

    #[test]
    fn native_threads_agree() {
        let n = 16;
        let a = Matrix::random(n, 10);
        let b = Matrix::random(n, 11);
        let (c, _) = run_threads(&ThreadMachine::new(4), &a, &b);
        assert_close(&c, &matmul_seq(&a, &b));
    }
}
