//! `explain` — instrumented breakdown of one algorithm run.
//!
//! Runs a single algorithm configuration on the `QSM_BACKEND`-selected
//! machine with the Full-level recorder active and prints a
//! phase-by-phase table: measured elapsed/compute/comm times next to
//! each model's per-phase communication prediction (QSM, s-QSM, BSP,
//! LogP, all on hardware parameters — the same inputs as
//! [`qsm_core::CostReport`]), the phase's contention κ, the observed
//! bank-κ and bank queuing time when a destination-bank model is
//! active (`QSM_BANKS`; both columns read 0 without one, and on the
//! threads backend, which does not simulate banks), which processor
//! reached the barrier last, the phase's worker compute imbalance
//! (`imb_pct`: spread `(max − min)/max` of per-processor compute
//! time), and the share of total processor-time spent waiting on
//! barriers (`bwait_pct`). The [`qsm_core::CostReport`] summary
//! follows.
//!
//! `QSM_ALGO=service` switches to the open-loop serving scenario
//! instead: one run of the `ext_service` workload at
//! `QSM_SERVICE_LOAD`% of predicted capacity, printing each node's
//! observed NIC/bank busy fraction next to the utilization model's
//! prediction, the latency percentiles, and the predicted bottleneck.
//!
//! Knobs: `QSM_ALGO=prefix|samplesort|listrank|service` (default
//! `prefix`), `QSM_P` (default 8), `QSM_N` (default 65536),
//! `QSM_BACKEND=sim|threads` (default `sim`; measured columns switch
//! from simulated cycles to host nanoseconds, model columns stay in
//! cycles), plus the usual `QSM_TRACE=path.json` /
//! `QSM_METRICS=path.json` outputs.

use qsm_algorithms::{gen, listrank, prefix, samplesort};
use qsm_bench::backend::Backend;
use qsm_bench::obs::ObsSink;
use qsm_bench::output::table;
use qsm_core::obs::ObsLevel;
use qsm_core::{CostReport, Machine, PhaseRecord};
use qsm_obs::{ObsData, SpanKind};
use qsm_simnet::{Cycles, MachineConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn run_algo<M: Machine>(
    algo: &str,
    machine: &M,
    n: usize,
    seed: u64,
) -> (Vec<PhaseRecord>, CostReport) {
    match algo {
        "prefix" => {
            let r = prefix::run_on(machine, &gen::random_u64s(n, seed ^ 0xDA7A));
            (r.run.phases, r.run.report)
        }
        "samplesort" => {
            let r = samplesort::run_on(machine, &gen::random_u32s(n, seed ^ 0xDA7A));
            (r.run.phases, r.run.report)
        }
        "listrank" => {
            let (succ, pred, _) = gen::random_list(n, seed ^ 0xDA7A);
            let r = listrank::run_on(machine, &succ, &pred);
            (r.run.phases, r.run.report)
        }
        other => {
            eprintln!("unknown QSM_ALGO '{other}' (want prefix, samplesort, or listrank)");
            std::process::exit(2);
        }
    }
}

/// `QSM_ALGO=service`: one open-loop serving run at
/// `QSM_SERVICE_LOAD`% of the utilization model's predicted capacity
/// (the same scenario the `ext_service` figure sweeps), with the
/// measured per-node busy fractions printed beside the model's
/// per-resource ρ so a disagreement is visible node by node.
fn explain_service() {
    let sink = ObsSink::from_env();
    let p = env_usize("QSM_P", 8);
    let fast = std::env::var("QSM_FAST").map(|v| v != "0").unwrap_or(false);
    let cfg = qsm_bench::RunCfg { p, reps: 1, fast };
    let base = qsm_bench::figures::ext_service::base_config(&cfg);

    let load_pct = qsm_bench::backend::env_service().load_pct;
    let capacity = qsm_serve::predict(&base.clone().with_offered(1)).capacity;
    let offered = (capacity * base.window * load_pct as f64 / 100.0).round() as usize;
    let svc = base.with_offered(offered);
    let pred = qsm_serve::predict(&svc);
    let out = qsm_serve::run(&svc, sink.recorder());

    let pct = |v: f64| format!("{:.1}", v * 100.0);
    let max = |u: &[f64]| u.iter().fold(0.0f64, |m, &v| m.max(v));
    let mean = qsm_serve::ServiceOutcome::mean_util;
    println!("== explain — service, p = {p}, backend = sim ==");
    println!(
        "(offered = {offered} txns at {load_pct}% of predicted capacity over a {:.0}-cycle \
         window; utilization = busy cycles / elapsed; predictions are the open-loop model's \
         per-resource ρ, capped at 100%)",
        svc.window
    );
    let summary = [
        ("send", &out.send_util, pred.rho_send),
        ("recv", &out.recv_util, pred.rho_recv),
        ("bank", &out.bank_util, pred.rho_bank),
    ];
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|(name, util, rho)| {
            vec![name.to_string(), pct(mean(util)), pct(max(util)), pct(rho.min(1.0))]
        })
        .collect();
    println!("{}", table(&["resource", "mean_pct", "max_pct", "pred_pct"], &rows));

    let node_rows: Vec<Vec<String>> = (0..p)
        .map(|i| {
            vec![
                format!("n{i}"),
                pct(out.send_util[i]),
                pct(out.recv_util[i]),
                pct(out.bank_util[i]),
            ]
        })
        .collect();
    println!("{}", table(&["node", "send_pct", "recv_pct", "bank_pct"], &node_rows));

    let tput = out.throughput() * 1e6;
    println!(
        "throughput = {tput:.1}/Mcyc (model predicts {:.1}/Mcyc, bottleneck: {}); \
         completed = {}, rejected = {}, retries = {}, timeouts = {}",
        pred.throughput * 1e6,
        pred.bottleneck(),
        out.completed,
        out.rejected,
        out.retries,
        out.timed_out,
    );
    println!(
        "latency p50 = {:.1}us  p99 = {:.1}us  p999 = {:.1}us (at 400 MHz)",
        qsm_bench::output::us_at_400mhz(out.latency_percentile(0.5)),
        qsm_bench::output::us_at_400mhz(out.latency_percentile(0.99)),
        qsm_bench::output::us_at_400mhz(out.latency_percentile(0.999)),
    );
    sink.finalize();
}

/// For each phase, the processor that entered the barrier last — the
/// one the whole machine waited on.
fn slowest_by_phase(data: &ObsData, nphases: usize) -> Vec<Option<u32>> {
    let mut last: Vec<Option<(Cycles, u32)>> = vec![None; nphases];
    for s in &data.spans {
        if s.kind != SpanKind::BarrierWait {
            continue;
        }
        let Some(slot) = last.get_mut(s.phase as usize) else { continue };
        if slot.is_none_or(|(t, _)| s.start > t) {
            *slot = Some((s.start, s.lane));
        }
    }
    last.into_iter().map(|o| o.map(|(_, lane)| lane)).collect()
}

/// Per-phase load-balance columns from the per-lane spans:
/// `(imb_pct, bwait_pct)` — compute imbalance `(max − min) / max`
/// over the per-lane summed compute time, and total barrier-wait
/// time as a share of the phase's processor-time `p · elapsed`.
/// Works on either backend's span stream; on the threads backend each
/// worker emits two barrier legs per phase, and summing counts both.
fn balance_by_phase(data: &ObsData, phases: &[PhaseRecord], p: usize) -> Vec<(f64, f64)> {
    let nphases = phases.len();
    let mut compute = vec![vec![0.0f64; p]; nphases];
    let mut bwait = vec![0.0f64; nphases];
    for s in &data.spans {
        let k = s.phase as usize;
        if k >= nphases {
            continue; // epilogue / non-phase spans
        }
        match s.kind {
            SpanKind::Compute => {
                if let Some(c) = compute[k].get_mut(s.lane as usize) {
                    *c += s.dur.get();
                }
            }
            SpanKind::BarrierWait => bwait[k] += s.dur.get(),
            _ => {}
        }
    }
    phases
        .iter()
        .enumerate()
        .map(|(k, r)| {
            let (max, min) = compute[k]
                .iter()
                .fold((0.0f64, f64::INFINITY), |(mx, mn), &c| (mx.max(c), mn.min(c)));
            let imb = if max > 0.0 { (max - min) / max * 100.0 } else { 0.0 };
            let ptime = r.timing.elapsed.get() * p as f64;
            let bw = if ptime > 0.0 { bwait[k] / ptime * 100.0 } else { 0.0 };
            (imb, bw)
        })
        .collect()
}

fn main() {
    let algo = std::env::var("QSM_ALGO").unwrap_or_else(|_| "prefix".into());
    if algo == "service" {
        // The serving engine is counter-based, not span-based; it
        // neither needs nor uses the Full-level recorder.
        explain_service();
        return;
    }
    // Full level regardless of QSM_TRACE: the table itself needs the
    // per-processor spans.
    let sink = ObsSink::with_level(Some(ObsLevel::Full));
    let backend = Backend::from_env();
    let p = env_usize("QSM_P", 8);
    let n = env_usize("QSM_N", 1 << 16);
    let machine = backend.machine(MachineConfig::paper_default(p), 0x1998_0021);
    let unit = machine.time_unit();

    sink.discard(); // nothing of interest captured yet; start clean
    let (phases, report) = run_algo(&algo, &machine, n, 0x1998_0021);
    let data = sink.recorder().take().unwrap_or_else(|| {
        eprintln!("explain requires the observability recorder; another one is installed");
        std::process::exit(1);
    });

    let slowest = slowest_by_phase(&data, phases.len());
    let balance = balance_by_phase(&data, &phases, p);
    let m = &report.models;
    let rows: Vec<Vec<String>> = phases
        .iter()
        .enumerate()
        .map(|(k, r)| {
            vec![
                k.to_string(),
                format!("{:.0}", r.timing.elapsed.get()),
                format!("{:.0}", r.timing.compute.get()),
                format!("{:.0}", r.timing.comm.get()),
                format!("{:.0}", m.qsm.phase_comm_cost(&r.profile)),
                format!("{:.0}", m.sqsm.phase_comm_cost(&r.profile)),
                format!("{:.0}", m.bsp.phase_comm_cost(&r.profile)),
                format!("{:.0}", m.logp.phase_comm_cost(&r.profile)),
                r.profile.kappa.to_string(),
                r.bank_kappa.to_string(),
                format!("{:.0}", r.bank_wait.get()),
                format!("{:.0}", r.link_wait.get()),
                format!("{:.1}", r.link_util * 100.0),
                slowest[k].map_or_else(|| "-".into(), |l| format!("p{l}")),
                format!("{:.1}", balance[k].0),
                format!("{:.1}", balance[k].1),
            ]
        })
        .collect();
    let headers = [
        "phase",
        "elapsed",
        "compute",
        "comm",
        "qsm",
        "sqsm",
        "bsp",
        "logp",
        "kappa",
        "bank_kappa",
        "bank_wait",
        "link_wait",
        "lutil_pct",
        "slowest",
        "imb_pct",
        "bwait_pct",
    ];

    let topo = qsm_bench::backend::env_topology(p).unwrap_or_default();
    let banks = qsm_bench::backend::env_banks().map(|b| b.banks_per_node).unwrap_or(0);
    println!("== explain — {algo}, p = {p}, n = {n}, backend = {} ==", machine.backend_name());
    println!("(topology = {} {}, banks = {banks})", topo.name(), topo.params());
    println!(
        "(measured columns incl. bank_wait/link_wait in {unit}; model columns are per-phase \
         predicted communication in cycles; bank_kappa in 4-byte words; lutil_pct = hottest \
         fabric link busy share; imb_pct = per-processor compute spread (max-min)/max; \
         bwait_pct = barrier wait share of p*elapsed)"
    );
    println!("{}", table(&headers, &rows));
    print!("{report}");

    sink.write(&data);
}
