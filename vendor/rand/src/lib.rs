//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API surface the workspace uses:
//! [`rngs::SmallRng`] (+ [`SeedableRng::seed_from_u64`]), the
//! [`Rng`] extension trait with `gen`/`gen_range`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded through splitmix64 — deterministic across platforms, which
//! is all the workspace requires (every measurement seed is threaded
//! explicitly; no claim of stream compatibility with upstream rand is
//! made or needed).

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random from an RNG.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types uniformly sampleable over a span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 as u64;
                // Modulo bias is < 2^-32 for every span in this
                // workspace; determinism, not bias, is the contract.
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, as in upstream rand.
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// splitmix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // All-zero state is unreachable from splitmix64 expansion,
            // but keep the guard for clarity.
            if s == [0; 4] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Random slice reordering.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=(5u64));
            assert!(w <= 5);
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the identity (astronomically unlikely)");
    }
}
