//! The FIFO service timeline — the one queueing primitive every
//! stage of the delivery pipeline is built on.
//!
//! Each of the network's contention points (a node's send engine, its
//! receive engine, a directed fabric link, a memory bank) is the same
//! abstract resource: a single FIFO server with a *free-at* time. A
//! request that becomes ready at `r` against a server free at `f`
//! starts service at `max(r, f)` and holds the server for its busy
//! time. [`FifoTimeline`] is that resource, vectorized over a dense
//! set of servers, extracted from the per-stage `Vec<Cycles>` fields
//! the pipeline historically carried inline.
//!
//! The extraction is a pure re-expression: [`FifoTimeline::serve`]
//! performs exactly `start = ready.max(free); free = start + busy` —
//! the same float operations in the same order as the original
//! inlined arithmetic — so the batch pipeline built on it is
//! byte-identical to the pre-refactor simulator. What the primitive
//! *adds* is what an open-loop caller (the `qsm-serve` transaction
//! engine) needs and the phase-synchronous driver never did:
//!
//! * cumulative per-server **busy accounting**
//!   ([`FifoTimeline::busy_total`]), the numerator of a utilization
//!   measurement over any elapsed window;
//! * a **backlog** probe ([`FifoTimeline::backlog`]) — how far a
//!   server's committed work extends past a given now — which is the
//!   queue-depth signal admission control throttles on.

use crate::time::Cycles;

/// When one FIFO server finished serving one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSlot {
    /// When service began (`max(ready, free)`): the request waited
    /// `start - ready` behind earlier traffic.
    pub start: Cycles,
    /// When service completed; the server is free again from here.
    pub done: Cycles,
}

/// A dense set of FIFO servers, each with a free-at time and a
/// cumulative busy total. See the module docs.
#[derive(Debug, Clone)]
pub struct FifoTimeline {
    free: Vec<Cycles>,
    busy: Vec<Cycles>,
}

impl FifoTimeline {
    /// `servers` FIFO servers, all idle at time zero.
    pub fn new(servers: usize) -> Self {
        Self { free: vec![Cycles::ZERO; servers], busy: vec![Cycles::ZERO; servers] }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the timeline has no servers at all (a stage that is
    /// configured off).
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Return every server to idle-at-zero and zero the busy totals.
    pub fn reset(&mut self) {
        self.free.fill(Cycles::ZERO);
        self.busy.fill(Cycles::ZERO);
    }

    /// When server `s` is next free.
    #[inline]
    pub fn free_at(&self, s: usize) -> Cycles {
        self.free[s]
    }

    /// Push server `s`'s free time forward to at least `t` without
    /// accruing busy time (the node-is-computing constraint).
    #[inline]
    pub fn advance(&mut self, s: usize, t: Cycles) {
        self.free[s] = self.free[s].max(t);
    }

    /// Serve one request on server `s`: service starts at
    /// `max(ready, free)`, holds the server for `busy`, and the
    /// server's busy total grows by `busy`.
    #[inline]
    pub fn serve(&mut self, s: usize, ready: Cycles, busy: Cycles) -> ServiceSlot {
        let start = ready.max(self.free[s]);
        self.serve_from(s, start, busy)
    }

    /// Serve one request whose start time the caller has already
    /// fixed (it must not precede the server's free time; the faulty
    /// injection path computes starts through its stall model). The
    /// server is held from `start` for `busy`.
    #[inline]
    pub fn serve_from(&mut self, s: usize, start: Cycles, busy: Cycles) -> ServiceSlot {
        let done = start + busy;
        self.free[s] = done;
        self.busy[s] += busy;
        ServiceSlot { start, done }
    }

    /// Cycles server `s` has spent serving since the last reset — the
    /// numerator of its utilization over any elapsed window.
    #[inline]
    pub fn busy_total(&self, s: usize) -> Cycles {
        self.busy[s]
    }

    /// How far server `s`'s committed work extends past `now` (zero
    /// when it is already idle) — the queue-depth signal admission
    /// control reads.
    #[inline]
    pub fn backlog(&self, s: usize, now: Cycles) -> Cycles {
        if self.free[s] > now {
            self.free[s] - now
        } else {
            Cycles::ZERO
        }
    }

    /// Latest free time across all servers (zero with no servers).
    pub fn quiesce(&self) -> Cycles {
        self.free.iter().copied().fold(Cycles::ZERO, Cycles::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_is_the_fifo_recurrence() {
        let mut t = FifoTimeline::new(2);
        // Idle server: starts at ready.
        let a = t.serve(0, Cycles::new(10.0), Cycles::new(5.0));
        assert_eq!(a, ServiceSlot { start: Cycles::new(10.0), done: Cycles::new(15.0) });
        // Busy server: queues behind the previous request.
        let b = t.serve(0, Cycles::new(12.0), Cycles::new(5.0));
        assert_eq!(b.start, Cycles::new(15.0));
        assert_eq!(b.done, Cycles::new(20.0));
        // Other servers are independent.
        let c = t.serve(1, Cycles::new(12.0), Cycles::new(1.0));
        assert_eq!(c.start, Cycles::new(12.0));
        assert_eq!(t.quiesce(), Cycles::new(20.0));
    }

    #[test]
    fn busy_accrues_service_not_idle_gaps() {
        let mut t = FifoTimeline::new(1);
        t.serve(0, Cycles::new(0.0), Cycles::new(3.0));
        t.serve(0, Cycles::new(100.0), Cycles::new(7.0));
        assert_eq!(t.busy_total(0), Cycles::new(10.0));
        // advance() models blocked time, not service.
        t.advance(0, Cycles::new(500.0));
        assert_eq!(t.busy_total(0), Cycles::new(10.0));
        assert_eq!(t.free_at(0), Cycles::new(500.0));
    }

    #[test]
    fn advance_never_moves_backwards() {
        let mut t = FifoTimeline::new(1);
        t.advance(0, Cycles::new(50.0));
        t.advance(0, Cycles::new(20.0));
        assert_eq!(t.free_at(0), Cycles::new(50.0));
    }

    #[test]
    fn backlog_measures_committed_work_past_now() {
        let mut t = FifoTimeline::new(1);
        t.serve(0, Cycles::ZERO, Cycles::new(100.0));
        assert_eq!(t.backlog(0, Cycles::new(30.0)), Cycles::new(70.0));
        assert_eq!(t.backlog(0, Cycles::new(100.0)), Cycles::ZERO);
        assert_eq!(t.backlog(0, Cycles::new(500.0)), Cycles::ZERO);
    }

    #[test]
    fn reset_clears_time_and_busy() {
        let mut t = FifoTimeline::new(2);
        t.serve(1, Cycles::new(5.0), Cycles::new(5.0));
        t.reset();
        assert_eq!(t.free_at(1), Cycles::ZERO);
        assert_eq!(t.busy_total(1), Cycles::ZERO);
        assert_eq!(t.quiesce(), Cycles::ZERO);
    }

    #[test]
    fn empty_timeline_is_a_configured_off_stage() {
        let t = FifoTimeline::new(0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.quiesce(), Cycles::ZERO);
    }
}
