//! Parallel prefix sums (Appendix: `parallelprefix`).
//!
//! The p-processor QSM algorithm with a single communication
//! synchronization: each processor computes prefix sums of its local
//! block, broadcasts its block total to every other processor, and —
//! after the barrier — adds the offset contributed by its
//! predecessors to each of its local values. Runs in `O(n/p + g·p)`
//! time; its QSM communication prediction is `g(p-1)` per-processor
//! words (the paper's Figure 1 lines).

use qsm_core::{Ctx, Layout, Machine, RunResult, SimMachine, ThreadMachine, ThreadRunResult};

use crate::analysis::{EffectiveParams, Prediction};

/// Number of setup phases (array registration + input distribution)
/// that precede the measured phases.
pub const SETUP_PHASES: usize = 2;

/// Phase count the paper's analysis charges to this algorithm (one
/// synchronization).
pub const PAPER_PHASES: usize = 1;

/// Elements per streamed chunk of the local passes (64 KiB of u64):
/// the accumulate and offset loops touch each chunk while it is still
/// cache-resident instead of making full-block passes. Purely a host
/// locality choice — outputs, charges, and message patterns are
/// unchanged.
const CHUNK: usize = 8192;

/// The QSM program: returns this processor's final local block.
fn program(ctx: &mut Ctx, input: &[u64]) -> Vec<u64> {
    let n = input.len();
    let p = ctx.nprocs();
    let me = ctx.proc_id();

    // Setup (uncounted): registration, then input distribution.
    let a = ctx.register::<u64>("prefix.data", n, Layout::Block);
    let sums = ctx.register::<u64>("prefix.sums", p * p, Layout::Block);
    ctx.sync();
    let r = ctx.local_range(&a);
    ctx.local_write(&a, r.start, &input[r.clone()]);
    ctx.sync();

    // Step 1+2 (measured): local prefix sums streamed in cache-sized
    // chunks (read, accumulate, and write back while the chunk is
    // hot), then broadcast the block total.
    let mut local = Vec::with_capacity(r.len());
    let mut acc = 0u64;
    let mut pos = r.start;
    while pos < r.end {
        let len = CHUNK.min(r.end - pos);
        let mut chunk = ctx.local_read(&a, pos, len);
        for v in chunk.iter_mut() {
            acc += *v;
            *v = acc;
        }
        ctx.local_write(&a, pos, &chunk);
        local.extend_from_slice(&chunk);
        pos += len;
    }
    // Load + add + store + loop ≈ 4 machine operations per element on
    // the Table 2 node (memory-bound streaming loop).
    ctx.charge(4 * local.len() as u64);
    for j in 0..p {
        if j != me {
            ctx.put(&sums, j * p + me, &[acc]);
        }
    }
    ctx.local_write(&sums, me * p + me, &[acc]);
    ctx.sync();

    // Step 3 (measured): add the offset from preceding processors,
    // again chunk-at-a-time so each chunk is written back while hot.
    let row = ctx.local_vec(&sums);
    debug_assert_eq!(row.len(), p);
    let offset: u64 = row[..me].iter().sum();
    ctx.charge(p as u64);
    let mut idx = 0;
    while idx < local.len() {
        let len = CHUNK.min(local.len() - idx);
        for v in local[idx..idx + len].iter_mut() {
            *v += offset;
        }
        ctx.local_write(&a, r.start + idx, &local[idx..idx + len]);
        idx += len;
    }
    ctx.charge(3 * local.len() as u64);
    ctx.sync();

    local
}

/// Result of a prefix-sums run on any backend.
#[derive(Debug)]
pub struct PrefixRun {
    /// The complete prefix-sums output (concatenated blocks).
    pub output: Vec<u64>,
    /// The raw run (phases `SETUP_PHASES..` are the measured ones).
    pub run: RunResult<Vec<u64>>,
}

impl PrefixRun {
    /// Measured communication cycles over the algorithm's phases.
    pub fn comm(&self) -> f64 {
        self.run.phases[SETUP_PHASES..].iter().map(|r| r.timing.comm.get()).sum()
    }

    /// Measured total cycles over the algorithm's phases.
    pub fn total(&self) -> f64 {
        self.run.phases[SETUP_PHASES..].iter().map(|r| r.timing.elapsed.get()).sum()
    }
}

/// Run on any [`Machine`] backend.
pub fn run_on<M: Machine>(machine: &M, input: &[u64]) -> PrefixRun {
    let run = machine.run(|ctx| program(ctx, input));
    let output = run.outputs.iter().flatten().copied().collect();
    PrefixRun { output, run }
}

/// Run on the simulated machine.
pub fn run_sim(machine: &SimMachine, input: &[u64]) -> PrefixRun {
    run_on(machine, input)
}

/// Run on the native thread machine.
pub fn run_threads(
    machine: &ThreadMachine,
    input: &[u64],
) -> (Vec<u64>, ThreadRunResult<Vec<u64>>) {
    let r = run_on(machine, input);
    (r.output, r.run)
}

/// The paper's prediction for communication time: QSM charges
/// `g(p-1)` per-processor remote words (×2 because our sums are
/// 8-byte values), BSP adds one `L`.
pub fn predict(params: &EffectiveParams) -> Prediction {
    let words = 2.0; // one u64 block total
    let qsm = params.g_put * (params.p as f64 - 1.0) * words;
    Prediction::from_qsm(qsm, PAPER_PHASES, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_u64s;
    use crate::seq;
    use qsm_simnet::MachineConfig;

    fn machine(p: usize) -> SimMachine {
        SimMachine::new(MachineConfig::paper_default(p))
    }

    #[test]
    fn matches_sequential_oracle() {
        let input = random_u64s(1000, 42);
        let run = run_sim(&machine(4), &input);
        assert_eq!(run.output, seq::prefix_sums(&input));
    }

    #[test]
    fn works_when_n_smaller_than_p() {
        let input = random_u64s(3, 1);
        let run = run_sim(&machine(8), &input);
        assert_eq!(run.output, seq::prefix_sums(&input));
    }

    #[test]
    fn works_on_single_processor() {
        let input = random_u64s(64, 2);
        let run = run_sim(&machine(1), &input);
        assert_eq!(run.output, seq::prefix_sums(&input));
    }

    #[test]
    fn phase_count_is_setup_plus_two() {
        let input = random_u64s(256, 3);
        let run = run_sim(&machine(4), &input);
        assert_eq!(run.run.num_phases(), SETUP_PHASES + 2);
    }

    #[test]
    fn communication_is_flat_in_n() {
        // The paper's Figure 1: prefix communication does not grow
        // with problem size (only p-1 words per processor move).
        let m = machine(8);
        let small = run_sim(&m, &random_u64s(1 << 10, 4)).comm();
        let large = run_sim(&m, &random_u64s(1 << 16, 4)).comm();
        let ratio = large / small;
        assert!((0.8..1.2).contains(&ratio), "comm should be flat in n: {small} -> {large}");
    }

    #[test]
    fn models_underestimate_prefix_comm() {
        // Figure 1's finding: both QSM and BSP underestimate because
        // o and l dominate this tiny communication; QSM (no L term)
        // sits lowest.
        let m = machine(16);
        let run = run_sim(&m, &random_u64s(1 << 14, 5));
        let params = EffectiveParams::measure(*m.config());
        let pred = predict(&params);
        assert!(pred.qsm < pred.bsp);
        assert!(pred.bsp < run.comm(), "BSP {} !< measured {}", pred.bsp, run.comm());
    }

    #[test]
    fn native_threads_agree_with_simulator() {
        let input = random_u64s(2048, 6);
        let (out, run) = run_threads(&ThreadMachine::new(4), &input);
        assert_eq!(out, seq::prefix_sums(&input));
        assert_eq!(run.phases.len(), SETUP_PHASES + 2);
    }

    #[test]
    fn profile_records_broadcast_volume() {
        let m = machine(4);
        let run = run_sim(&m, &random_u64s(512, 7));
        // The broadcast phase moves (p-1) u64s = 6 words per proc.
        let bcast = &run.run.phases[SETUP_PHASES].profile;
        assert_eq!(bcast.m_rw, 6);
        assert_eq!(bcast.kappa, 1);
    }
}
