//! Extension experiment: hot-spot contention — QSM's κ vs s-QSM's g·κ.
//!
//! The two models differ in exactly one term: a phase with κ queued
//! accesses to one location costs `max(m_op, g·m_rw, κ)` under QSM
//! but `max(m_op, g·m_rw, g·κ)` under s-QSM. The paper presents its
//! results under s-QSM ("the same gap parameter is encountered at
//! processors and at memory"); this experiment shows why that is the
//! right choice on a machine whose memory modules serve requests at
//! the gap rate.
//!
//! Setup: every processor issues `m` single-word gets of location 0
//! (κ = m·p, all served by one owner), against a control where the
//! same `m` gets are spread over distinct locations on distinct
//! owners (κ = 1). Expected shape: the control matches both models;
//! the hot-spot runs track the s-QSM line (linear in p) while the
//! QSM line stays flat and underpredicts by a factor ≈ p.

use qsm_algorithms::analysis::EffectiveParams;
use qsm_core::{Layout, SimMachine};
use qsm_simnet::MachineConfig;

use crate::output::{csv, table, us_at_400mhz};
use crate::{Report, RunCfg};

/// Gets issued per processor.
const M: usize = 512;

/// Measured comm of one phase of `M` gets per processor, hot or
/// spread.
fn measure(p: usize, hot: bool) -> f64 {
    let machine = SimMachine::new(MachineConfig::paper_default(p));
    let run = machine.run(move |ctx| {
        let p = ctx.nprocs();
        let arr = ctx.register::<u32>("spot", p * M, Layout::Block);
        ctx.sync();
        let me = ctx.proc_id();
        let tickets: Vec<_> = (0..M)
            .map(|k| {
                let idx = if hot {
                    0 // everyone hammers location 0
                } else {
                    // distinct location on the next owner over
                    ((me + 1) % p) * M + k
                };
                ctx.get(&arr, idx, 1)
            })
            .collect();
        ctx.sync();
        for t in tickets {
            let _ = ctx.take(t);
        }
    });
    run.phases[1].timing.comm.get()
}

/// Run the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    crate::journal::set_figure("ext_hotspot", cfg);
    crate::backend::warn_sim_only("ext_hotspot");
    let ps: Vec<usize> = if cfg.fast { vec![2, 4, 8] } else { vec![2, 4, 8, 16] };
    // Rows are fully independent per machine size — each one is its
    // own sweep point (calibration plus both measurements).
    let rows = crate::sweep::map(cfg.p, ps, |_, p| {
        let params = EffectiveParams::measure(MachineConfig::paper_default(p));
        // Model lines (communication only, plus the per-phase L that
        // both share): QSM charges the issuer's words; s-QSM charges
        // the serialized queue at the memory module.
        let qsm = params.g_get * M as f64 + params.l_sync;
        let sqsm = params.g_get * (M * p) as f64 + params.l_sync;
        let hot = measure(p, true);
        let spread = measure(p, false);
        vec![
            p.to_string(),
            format!("{:.1}", us_at_400mhz(spread)),
            format!("{:.1}", us_at_400mhz(hot)),
            format!("{:.1}", us_at_400mhz(qsm)),
            format!("{:.1}", us_at_400mhz(sqsm)),
            format!("{:.2}", hot / sqsm),
        ]
    });
    let headers = ["p", "spread_us", "hotspot_us", "qsm_pred_us", "sqsm_pred_us", "hot_vs_sqsm"];
    Report {
        id: "ext_hotspot",
        title: "extension: hot-spot gets — s-QSM's g*kappa term vs QSM's kappa",
        text: table(&headers, &rows),
        csv: csv(&headers, &rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsm_models::nmin::linear_fit;

    #[test]
    fn sqsm_tracks_hotspot_qsm_does_not() {
        let cfg = RunCfg::fast();
        let rep = run(&cfg);
        let col = |l: &str, i: usize| l.split(',').nth(i).unwrap().parse::<f64>().unwrap();
        let lines: Vec<&str> = rep.csv.lines().skip(1).collect();
        // Hot-spot time grows ~linearly in p...
        let pts: Vec<(f64, f64)> = lines.iter().map(|l| (col(l, 0), col(l, 2))).collect();
        let (slope, _) = linear_fit(&pts);
        assert!(slope > 0.0, "hot-spot time must grow with p");
        // ...tracking s-QSM within a factor ~2 at every p...
        for l in &lines {
            let ratio = col(l, 5);
            assert!((0.4..2.5).contains(&ratio), "hot vs s-QSM: {l}");
        }
        // ...while QSM's flat line underpredicts badly at the top p.
        let last = lines.last().unwrap();
        assert!(
            col(last, 2) > 2.0 * col(last, 3),
            "QSM should underpredict the hot spot at large p: {last}"
        );
        // Control: spread traffic stays near the (flat) QSM line.
        for l in &lines {
            let err = (col(l, 1) - col(l, 3)).abs() / col(l, 1);
            assert!(err < 0.6, "spread control should sit near QSM: {l}");
        }
    }
}
