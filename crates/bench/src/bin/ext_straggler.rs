//! Runs the heterogeneous-processors (straggler) extension experiment.
fn main() {
    let cfg = qsm_bench::RunCfg::from_env();
    qsm_bench::figures::ext_straggler::run(&cfg).emit();
}
