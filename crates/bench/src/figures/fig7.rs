//! Figure 7: remote memory access performance under the three access
//! patterns on the Section 4 platforms.
//!
//! Expected shape (the paper's finding): NoConflict is modestly
//! better than Random (0–68%), while Conflict is a factor of 2–4
//! worse than NoConflict on hardware-limited paths — i.e. the
//! randomized layout QSM assumes forgoes a little performance to
//! avoid a catastrophic worst case. A native run on the host (padded
//! atomics as banks) is appended as a real-hardware data point.

use qsm_membank::{platform, run_all, NativeBank, Pattern, Sample, SimBank};

use crate::output::{csv, table};
use crate::{Report, RunCfg};

/// Append one panel of (pattern, sample) rows, normalized against
/// the panel's NoConflict time.
fn push_panel(
    rows: &mut Vec<Vec<String>>,
    platform: &str,
    samples: &[(Pattern, Sample)],
    ns_decimals: usize,
) {
    let noc = samples.iter().find(|(p, _)| *p == Pattern::NoConflict).unwrap().1.avg_ns;
    for (p, s) in samples {
        rows.push(vec![
            platform.to_string(),
            p.label().to_string(),
            format!("{:.*}", ns_decimals, s.avg_ns),
            s.avg_queue_ns.map_or_else(|| "-".to_string(), |q| format!("{q:.0}")),
            format!("{:.2}", s.avg_ns / noc),
        ]);
    }
}

/// Run the experiment. Every panel — the five simulated platforms
/// and the host data point — goes through the same generic
/// microbenchmark loop; only the [`qsm_membank::BankBackend`]
/// differs.
pub fn run(cfg: &RunCfg) -> Report {
    crate::journal::set_figure("fig7", cfg);
    let accesses = if cfg.fast { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    for m in platform::figure7_machines() {
        let samples = run_all(&SimBank { machine: &m, seed: 0x1998 }, accesses);
        push_panel(&mut rows, m.name, &samples, 0);
    }

    // Native host data point.
    let threads = std::thread::available_parallelism().map(|c| c.get().min(8)).unwrap_or(4);
    let native =
        run_all(&NativeBank { threads, banks: 8 }, if cfg.fast { 50_000 } else { 500_000 });
    push_panel(&mut rows, &format!("host ({threads} threads; native atomics)"), &native, 1);

    let headers = ["platform", "pattern", "avg_ns", "queue_ns", "vs_noconflict"];
    Report {
        id: "fig7",
        title: "memory-bank contention: Random/Conflict/NoConflict across platforms",
        text: table(&headers, &rows),
        csv: csv(&headers, &rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_platform_reports_three_patterns() {
        let rep = run(&RunCfg::fast());
        let lines = rep.csv.lines().skip(1).count();
        // 5 simulated platforms + host, 3 patterns each.
        assert_eq!(lines, 6 * 3);
    }

    #[test]
    fn simulated_ratios_match_paper_band() {
        let rep = run(&RunCfg::fast());
        for line in rep.csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            if cells[0].starts_with("host") {
                continue; // real hardware is allowed to be noisy
            }
            let ratio: f64 = cells[4].parse().unwrap();
            match cells[1] {
                "NoConflict" => assert!((ratio - 1.0).abs() < 1e-9),
                "Random" => assert!((1.0..=1.9).contains(&ratio), "{line}"),
                "Conflict" => assert!((1.0..=8.0).contains(&ratio), "{line}"),
                other => panic!("unexpected pattern {other}"),
            }
        }
    }
}
