//! `explain` — instrumented breakdown of one algorithm run.
//!
//! Runs a single algorithm configuration on the `QSM_BACKEND`-selected
//! machine with the Full-level recorder active and prints a
//! phase-by-phase table: measured elapsed/compute/comm times next to
//! each model's per-phase communication prediction (QSM, s-QSM, BSP,
//! LogP, all on hardware parameters — the same inputs as
//! [`qsm_core::CostReport`]), the phase's contention κ, the observed
//! bank-κ and bank queuing time when a destination-bank model is
//! active (`QSM_BANKS`; both columns read 0 without one, and on the
//! threads backend, which does not simulate banks), which processor
//! reached the barrier last, the phase's worker compute imbalance
//! (`imb_pct`: spread `(max − min)/max` of per-processor compute
//! time), and the share of total processor-time spent waiting on
//! barriers (`bwait_pct`). The [`qsm_core::CostReport`] summary
//! follows.
//!
//! Knobs: `QSM_ALGO=prefix|samplesort|listrank` (default `prefix`),
//! `QSM_P` (default 8), `QSM_N` (default 65536),
//! `QSM_BACKEND=sim|threads` (default `sim`; measured columns switch
//! from simulated cycles to host nanoseconds, model columns stay in
//! cycles), plus the usual `QSM_TRACE=path.json` /
//! `QSM_METRICS=path.json` outputs.

use qsm_algorithms::{gen, listrank, prefix, samplesort};
use qsm_bench::backend::Backend;
use qsm_bench::obs::ObsSink;
use qsm_bench::output::table;
use qsm_core::obs::ObsLevel;
use qsm_core::{CostReport, Machine, PhaseRecord};
use qsm_obs::{ObsData, SpanKind};
use qsm_simnet::{Cycles, MachineConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn run_algo<M: Machine>(
    algo: &str,
    machine: &M,
    n: usize,
    seed: u64,
) -> (Vec<PhaseRecord>, CostReport) {
    match algo {
        "prefix" => {
            let r = prefix::run_on(machine, &gen::random_u64s(n, seed ^ 0xDA7A));
            (r.run.phases, r.run.report)
        }
        "samplesort" => {
            let r = samplesort::run_on(machine, &gen::random_u32s(n, seed ^ 0xDA7A));
            (r.run.phases, r.run.report)
        }
        "listrank" => {
            let (succ, pred, _) = gen::random_list(n, seed ^ 0xDA7A);
            let r = listrank::run_on(machine, &succ, &pred);
            (r.run.phases, r.run.report)
        }
        other => {
            eprintln!("unknown QSM_ALGO '{other}' (want prefix, samplesort, or listrank)");
            std::process::exit(2);
        }
    }
}

/// For each phase, the processor that entered the barrier last — the
/// one the whole machine waited on.
fn slowest_by_phase(data: &ObsData, nphases: usize) -> Vec<Option<u32>> {
    let mut last: Vec<Option<(Cycles, u32)>> = vec![None; nphases];
    for s in &data.spans {
        if s.kind != SpanKind::BarrierWait {
            continue;
        }
        let Some(slot) = last.get_mut(s.phase as usize) else { continue };
        if slot.is_none_or(|(t, _)| s.start > t) {
            *slot = Some((s.start, s.lane));
        }
    }
    last.into_iter().map(|o| o.map(|(_, lane)| lane)).collect()
}

/// Per-phase load-balance columns from the per-lane spans:
/// `(imb_pct, bwait_pct)` — compute imbalance `(max − min) / max`
/// over the per-lane summed compute time, and total barrier-wait
/// time as a share of the phase's processor-time `p · elapsed`.
/// Works on either backend's span stream; on the threads backend each
/// worker emits two barrier legs per phase, and summing counts both.
fn balance_by_phase(data: &ObsData, phases: &[PhaseRecord], p: usize) -> Vec<(f64, f64)> {
    let nphases = phases.len();
    let mut compute = vec![vec![0.0f64; p]; nphases];
    let mut bwait = vec![0.0f64; nphases];
    for s in &data.spans {
        let k = s.phase as usize;
        if k >= nphases {
            continue; // epilogue / non-phase spans
        }
        match s.kind {
            SpanKind::Compute => {
                if let Some(c) = compute[k].get_mut(s.lane as usize) {
                    *c += s.dur.get();
                }
            }
            SpanKind::BarrierWait => bwait[k] += s.dur.get(),
            _ => {}
        }
    }
    phases
        .iter()
        .enumerate()
        .map(|(k, r)| {
            let (max, min) = compute[k]
                .iter()
                .fold((0.0f64, f64::INFINITY), |(mx, mn), &c| (mx.max(c), mn.min(c)));
            let imb = if max > 0.0 { (max - min) / max * 100.0 } else { 0.0 };
            let ptime = r.timing.elapsed.get() * p as f64;
            let bw = if ptime > 0.0 { bwait[k] / ptime * 100.0 } else { 0.0 };
            (imb, bw)
        })
        .collect()
}

fn main() {
    // Full level regardless of QSM_TRACE: the table itself needs the
    // per-processor spans.
    let sink = ObsSink::with_level(Some(ObsLevel::Full));
    let algo = std::env::var("QSM_ALGO").unwrap_or_else(|_| "prefix".into());
    let backend = Backend::from_env();
    let p = env_usize("QSM_P", 8);
    let n = env_usize("QSM_N", 1 << 16);
    let machine = backend.machine(MachineConfig::paper_default(p), 0x1998_0021);
    let unit = machine.time_unit();

    sink.discard(); // nothing of interest captured yet; start clean
    let (phases, report) = run_algo(&algo, &machine, n, 0x1998_0021);
    let data = sink.recorder().take().unwrap_or_else(|| {
        eprintln!("explain requires the observability recorder; another one is installed");
        std::process::exit(1);
    });

    let slowest = slowest_by_phase(&data, phases.len());
    let balance = balance_by_phase(&data, &phases, p);
    let m = &report.models;
    let rows: Vec<Vec<String>> = phases
        .iter()
        .enumerate()
        .map(|(k, r)| {
            vec![
                k.to_string(),
                format!("{:.0}", r.timing.elapsed.get()),
                format!("{:.0}", r.timing.compute.get()),
                format!("{:.0}", r.timing.comm.get()),
                format!("{:.0}", m.qsm.phase_comm_cost(&r.profile)),
                format!("{:.0}", m.sqsm.phase_comm_cost(&r.profile)),
                format!("{:.0}", m.bsp.phase_comm_cost(&r.profile)),
                format!("{:.0}", m.logp.phase_comm_cost(&r.profile)),
                r.profile.kappa.to_string(),
                r.bank_kappa.to_string(),
                format!("{:.0}", r.bank_wait.get()),
                format!("{:.0}", r.link_wait.get()),
                format!("{:.1}", r.link_util * 100.0),
                slowest[k].map_or_else(|| "-".into(), |l| format!("p{l}")),
                format!("{:.1}", balance[k].0),
                format!("{:.1}", balance[k].1),
            ]
        })
        .collect();
    let headers = [
        "phase",
        "elapsed",
        "compute",
        "comm",
        "qsm",
        "sqsm",
        "bsp",
        "logp",
        "kappa",
        "bank_kappa",
        "bank_wait",
        "link_wait",
        "lutil_pct",
        "slowest",
        "imb_pct",
        "bwait_pct",
    ];

    let topo = qsm_bench::backend::env_topology(p).unwrap_or_default();
    let banks = qsm_bench::backend::env_banks().map(|b| b.banks_per_node).unwrap_or(0);
    println!("== explain — {algo}, p = {p}, n = {n}, backend = {} ==", machine.backend_name());
    println!("(topology = {} {}, banks = {banks})", topo.name(), topo.params());
    println!(
        "(measured columns incl. bank_wait/link_wait in {unit}; model columns are per-phase \
         predicted communication in cycles; bank_kappa in 4-byte words; lutil_pct = hottest \
         fabric link busy share; imb_pct = per-processor compute spread (max-min)/max; \
         bwait_pct = barrier wait share of p*elapsed)"
    );
    println!("{}", table(&headers, &rows));
    print!("{report}");

    sink.write(&data);
}
