//! The SPMD threads engine: a lock-free, double-buffered `sync()`.
//!
//! On the threads backend no driver thread exists. Every worker
//! publishes its phase contribution (charged ops, queued puts/gets,
//! registrations, and a pointer to its own memory segments) into a
//! per-processor **slot** of a shared [`ExchangeArea`], then crosses
//! two barriers per phase:
//!
//! ```text
//!   publish slot[phase % 2]          (each worker, its own slot)
//!   ── B1 ──────────────────────────
//!   leader: plan stage               (worker 0; reads all slots)
//!   all:    serve own gets           (read peers' frozen stores)
//!   ── B2 ──────────────────────────
//!   all:    apply puts to own block, install/retire arrays
//!   leader: price + record stages    (overlaps peers' next compute)
//! ```
//!
//! Slots are double-buffered by phase parity (the `active_buffer`
//! idiom): phase *k* publishes into `slots[k % 2]`, so the leader's
//! trailing price/record work on phase *k* can overlap the peers'
//! publication of phase *k+1* without contention. A slot stays
//! untouched until its owner republishes at phase *k+2*, which cannot
//! happen before the leader finished phase *k* (the leader only
//! reaches the *k+1* barriers after recording *k*).
//!
//! The plan/price/record stages are literally the driver's
//! (`Driver::plan_stage` & co., generic over
//! [`PhaseInput`]), so both execution paths meter and price phases
//! with the same code; only the *exchange* differs — workers serve
//! their own gets from peers' frozen stores between the barriers and
//! apply the puts that land in their own block right after B2, in the
//! same deterministic processor-then-issue order as the driver.
//!
//! ### Memory-safety windows
//!
//! All cross-thread access to slot contents is bracketed by the two
//! barriers (which provide the happens-before edges):
//!
//! * a slot published for phase *k* is read by others only between
//!   B1(*k*) and the leader's record(*k*);
//! * each worker's [`LocalStore`] is frozen from its publish until
//!   B2(*k*) (reads by any worker), and mutated only by its owner
//!   afterwards;
//! * registration slices published by pointer are read only by the
//!   leader between B1 and B2; owners clear them after B2.
//!
//! ### Aborts
//!
//! A panicking worker (user program or a collective-violation check)
//! poisons the shared barrier; every other worker observes the poison
//! at its next (or current) wait and unwinds with a private
//! [`SpmdAborted`] marker. All workers then meet at an exit
//! rendezvous — no worker's `Ctx` (and thus no published store) is
//! dropped while a peer could still read it — and the engine re-raises
//! the first real payload.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qsm_obs::{Recorder, Span, SpanKind};
use qsm_simnet::Cycles;

use crate::addr::{block_range, for_each_owner_run, ArrayId, Layout};
use crate::ctx::{Ctx, Runtime};
use crate::driver::{Driver, PhaseInput, PhasePlan, PhaseRecord};
use crate::machine::PhaseTimer;
use crate::ops::QueuedOps;
use crate::shmem::{ArrayInfo, LocalStore, Registration};

/// Marker payload workers unwind with when a *peer* failed: the
/// engine suppresses it in favor of the originating panic.
pub(crate) struct SpmdAborted;

#[cold]
fn aborted() -> ! {
    std::panic::panic_any(SpmdAborted);
}

/// Adaptive wait: brief spin, then yield, then sleep — the host may
/// have (many) fewer cores than workers, so unbounded spinning would
/// starve the very thread being waited on.
fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else if *spins < 256 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(50));
    }
}

/// A reusable, poisonable spin barrier (sense via a generation
/// counter). `wait()` returns whether the barrier is poisoned;
/// poisoned barriers release all current and future waiters
/// immediately, which is how a panicking worker unblocks its peers.
///
/// With `track` on, every wait that escalated past pure spinning
/// bumps one of two relaxed telemetry counters (its deepest backoff
/// state: yield or sleep) — cheap enough to leave in the wait path,
/// but only requested when full-level observability is capturing.
struct SpinBarrier {
    p: usize,
    count: AtomicUsize,
    gen: AtomicUsize,
    poisoned: AtomicBool,
    track: bool,
    /// Waits whose deepest backoff was `yield_now` (spun ≥ 64).
    yields: AtomicU64,
    /// Waits that escalated all the way to sleeping (spun ≥ 256).
    sleeps: AtomicU64,
}

impl SpinBarrier {
    fn new(p: usize, track: bool) -> Self {
        Self {
            p,
            count: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            track,
            yields: AtomicU64::new(0),
            sleeps: AtomicU64::new(0),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Block until all `p` workers arrived (or the barrier was
    /// poisoned); returns `true` iff poisoned. The release-store of
    /// `gen` by the last arriver and the acquire-loads by the
    /// spinners (plus the AcqRel RMW chain on `count`) provide the
    /// happens-before edge between everything published before the
    /// barrier and everything read after it.
    fn wait(&self) -> bool {
        if self.is_poisoned() {
            return true;
        }
        let g = self.gen.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.p {
            self.count.store(0, Ordering::Relaxed);
            self.gen.store(g + 1, Ordering::Release);
            self.is_poisoned()
        } else {
            let mut spins = 0u32;
            while self.gen.load(Ordering::Acquire) == g {
                if self.is_poisoned() {
                    return true;
                }
                backoff(&mut spins);
            }
            if self.track {
                if spins >= 256 {
                    self.sleeps.fetch_add(1, Ordering::Relaxed);
                } else if spins >= 64 {
                    self.yields.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.is_poisoned()
        }
    }

    /// `(yield, sleep)` escalation counts accumulated so far (always
    /// zero unless tracking was requested at construction).
    fn transitions(&self) -> (u64, u64) {
        (self.yields.load(Ordering::Relaxed), self.sleeps.load(Ordering::Relaxed))
    }
}

/// Slot states (plain `u8` behind the barrier's ordering).
const STATE_EMPTY: u8 = 0;
const STATE_SYNCED: u8 = 1;
const STATE_FINISHED: u8 = 2;

/// One processor's published phase contribution. Written only by its
/// owner (at publish time); read by peers only inside the barrier
/// windows documented on the module.
pub(crate) struct Slot {
    state: AtomicU8,
    charged: UnsafeCell<u64>,
    arrived: UnsafeCell<Instant>,
    /// Queued ops, moved in at publish; put payload buffers are
    /// reclaimed by the owner when it republishes two phases later.
    ops: UnsafeCell<QueuedOps>,
    /// The owner's pending registrations (valid B1..B2; leader only).
    regs: UnsafeCell<*const [Registration]>,
    /// The owner's pending unregistrations (valid B1..B2; leader only).
    unregs: UnsafeCell<*const [ArrayId]>,
    /// The owner's memory view (frozen publish..B2; any worker).
    store: UnsafeCell<*const LocalStore>,
}

impl Slot {
    fn new() -> Self {
        const NO_REGS: &[Registration] = &[];
        const NO_UNREGS: &[ArrayId] = &[];
        Self {
            state: AtomicU8::new(STATE_EMPTY),
            charged: UnsafeCell::new(0),
            arrived: UnsafeCell::new(Instant::now()),
            ops: UnsafeCell::new(QueuedOps::default()),
            regs: UnsafeCell::new(NO_REGS as *const [Registration]),
            unregs: UnsafeCell::new(NO_UNREGS as *const [ArrayId]),
            store: UnsafeCell::new(std::ptr::null()),
        }
    }
}

// SAFETY: every UnsafeCell in a Slot follows the single-writer
// barrier-bracketed protocol documented on the module: the owner
// writes only at publish time, peers read only inside the barrier
// windows, and the barrier provides the required happens-before.
impl PhaseInput for Slot {
    fn charged(&self) -> u64 {
        unsafe { *self.charged.get() }
    }
    fn arrived(&self) -> Instant {
        unsafe { *self.arrived.get() }
    }
    fn ops(&self) -> &QueuedOps {
        unsafe { &*self.ops.get() }
    }
    fn regs(&self) -> &[Registration] {
        unsafe { &**self.regs.get() }
    }
    fn unregs(&self) -> &[ArrayId] {
        unsafe { &**self.unregs.get() }
    }
}

/// Run-level observability handle for the SPMD path: the shared
/// recorder plus the timer's epoch instant every worker-side span
/// timestamp is measured from (so worker lanes and the leader's
/// machine track share one timeline). Created by the engine only
/// when full-level capture is on.
pub(crate) struct RunObs {
    pub(crate) rec: Recorder,
    pub(crate) epoch: Instant,
}

/// One worker's span capture across an SPMD run. Spans are buffered
/// locally and flushed to the recorder at the exit epilogue — after
/// every phase has been priced — so capture never perturbs measured
/// timing (the "spans after measurement" discipline).
pub(crate) struct SpmdObs {
    rec: Recorder,
    epoch: Instant,
    /// End of the previous stage = start of the next span:
    /// consecutive spans share boundary instants, so each worker's
    /// lane tiles exactly with no gaps or overlap.
    cursor: Instant,
    spans: Vec<Span>,
}

impl SpmdObs {
    fn new(obs: &RunObs) -> Self {
        Self { rec: obs.rec.clone(), epoch: obs.epoch, cursor: obs.epoch, spans: Vec::new() }
    }

    fn ns(&self, t: Instant) -> Cycles {
        Cycles::new(t.saturating_duration_since(self.epoch).as_nanos() as f64)
    }

    /// Close the span that started at the cursor and advance it:
    /// the stage `kind` of `phase` on worker lane `lane` ran from the
    /// previous mark to now.
    fn mark(&mut self, kind: SpanKind, phase: u64, lane: u32) {
        let now = Instant::now();
        let start = self.ns(self.cursor);
        self.spans.push(Span { kind, phase, lane, start, dur: self.ns(now) - start });
        self.cursor = now;
    }

    /// Flush the buffered spans and the per-worker roll-ups (barrier
    /// leg waits, busy/wait totals, utilization) into the recorder.
    fn flush(mut self) {
        let mut busy = 0.0f64;
        let mut wait = 0.0f64;
        for s in &self.spans {
            if s.kind == SpanKind::BarrierWait {
                wait += s.dur.get();
            } else {
                busy += s.dur.get();
            }
        }
        self.rec.observe_iter(
            "barrier_wait_ns",
            self.spans
                .iter()
                .filter(|s| s.kind == SpanKind::BarrierWait)
                .map(|s| s.dur.get() as u64),
        );
        let total = busy + wait;
        if total > 0.0 {
            self.rec.observe("spmd_worker_util_pct", (busy * 100.0 / total + 0.5) as u64);
        }
        self.rec.add("spmd_busy_ns", busy as u64);
        self.rec.add("spmd_wait_ns", wait as u64);
        self.rec.spans(self.spans.drain(..));
    }
}

/// Phase-pipeline state owned by worker 0 (the leader): the shared
/// metering/pricing driver, the backend timer, and the growing record
/// stream.
struct LeaderState {
    driver: Driver,
    timer: Box<dyn PhaseTimer>,
    records: Vec<PhaseRecord>,
    plan: Option<PhasePlan>,
}

/// The shared rendezvous structure of one SPMD run. Lives on the
/// engine's stack frame; workers borrow it for the run's duration
/// (the exit rendezvous guarantees no worker outlives the borrow).
pub(crate) struct ExchangeArea {
    p: usize,
    /// Double-buffered per-processor slots, indexed `[phase % 2][proc]`.
    slots: [Box<[Slot]>; 2],
    barrier: SpinBarrier,
    /// Exit rendezvous: workers count themselves out and spin until
    /// everyone left, so no `Ctx` drops while a peer might read it.
    exited: AtomicUsize,
    /// Real panic payloads, stashed by the engine's worker wrapper.
    panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>>,
    leader: UnsafeCell<LeaderState>,
    /// Full-level capture handle; workers clone per-lane span buffers
    /// off it in `make_ctx`. `None` keeps the whole path span-free.
    obs: Option<RunObs>,
}

// SAFETY: Slot access follows the single-writer barrier protocol
// (see the module doc); `leader` is touched only by worker 0 during
// the run and by the owning engine frame after every worker exited.
unsafe impl Sync for ExchangeArea {}

impl ExchangeArea {
    pub(crate) fn new(
        p: usize,
        driver: Driver,
        timer: Box<dyn PhaseTimer>,
        obs: Option<RunObs>,
    ) -> Self {
        let mk = || (0..p).map(|_| Slot::new()).collect::<Vec<_>>().into_boxed_slice();
        Self {
            p,
            slots: [mk(), mk()],
            barrier: SpinBarrier::new(p, obs.is_some()),
            exited: AtomicUsize::new(0),
            panics: Mutex::new(Vec::new()),
            leader: UnsafeCell::new(LeaderState { driver, timer, records: Vec::new(), plan: None }),
            obs,
        }
    }

    /// `(yield, sleep)` backoff escalations the barrier accumulated
    /// over the run (zero unless capture was on).
    pub(crate) fn barrier_transitions(&self) -> (u64, u64) {
        self.barrier.transitions()
    }

    /// Release all workers blocked (now or later) on the barrier;
    /// called by the engine's wrapper when any worker panics.
    pub(crate) fn poison(&self) {
        self.barrier.poison();
    }

    /// Record a real (non-marker) panic payload for re-raising.
    pub(crate) fn stash_panic(&self, proc: usize, payload: Box<dyn std::any::Any + Send>) {
        self.panics.lock().unwrap_or_else(|e| e.into_inner()).push((proc, payload));
    }

    /// Tear down after every worker exited: the recorded phases and
    /// the lowest-processor real panic payload, if any.
    pub(crate) fn into_results(self) -> (Vec<PhaseRecord>, Option<Box<dyn std::any::Any + Send>>) {
        let mut panics = self.panics.into_inner().unwrap_or_else(|e| e.into_inner());
        panics.sort_by_key(|&(proc, _)| proc);
        let payload = (!panics.is_empty()).then(|| panics.remove(0).1);
        (self.leader.into_inner().records, payload)
    }
}

/// A `Ctx`'s handle onto the exchange area. The raw pointer is
/// dereferenced only while the engine's stack frame (which owns the
/// area and blocks until every worker exits) is alive.
#[derive(Clone, Copy)]
pub(crate) struct SpmdLink {
    area: *const ExchangeArea,
}

/// Build the per-processor context for one SPMD worker (attaching a
/// span buffer when the run captures at full level).
pub(crate) fn make_ctx(proc: usize, nprocs: usize, seed: u64, area: &ExchangeArea) -> Ctx {
    let mut ctx = Ctx::new_spmd(proc, nprocs, seed, SpmdLink { area });
    if let Some(obs) = &area.obs {
        ctx.spmd_obs = Some(Box::new(SpmdObs::new(obs)));
    }
    ctx
}

/// Count this worker out and wait until every worker did; after this
/// returns, no peer will ever read this worker's `Ctx` again.
pub(crate) fn exit_rendezvous(area: &ExchangeArea) {
    area.exited.fetch_add(1, Ordering::AcqRel);
    let mut spins = 0u32;
    while area.exited.load(Ordering::Acquire) < area.p {
        backoff(&mut spins);
    }
}

fn area_of(ctx: &Ctx) -> &'static ExchangeArea {
    let link = match &ctx.runtime {
        Runtime::Spmd(link) => *link,
        Runtime::Channel { .. } => unreachable!("SPMD call on a channel-path Ctx"),
    };
    // SAFETY: the engine keeps the area alive until after the exit
    // rendezvous, which strictly follows every use of this reference.
    // (The 'static is a local fiction; the reference never escapes
    // the sync/epilogue call that derived it.)
    unsafe { &*link.area }
}

/// Move this phase's contribution into our slot at `parity`,
/// reclaiming the buffers the slot still holds from phase-2.
fn publish(ctx: &mut Ctx, area: &ExchangeArea, parity: usize, state: u8) {
    let slot = &area.slots[parity][ctx.proc];
    // SAFETY: only the owner writes its slot, and the phase-(k-2)
    // tenant is fully retired by the time phase k publishes (module
    // doc); no reader may touch the slot until after B1.
    unsafe {
        let ops_cell = &mut *slot.ops.get();
        let mut old = std::mem::replace(ops_cell, ctx.queued.take());
        for put in old.puts.drain(..) {
            ctx.recycle_raw(put.data);
        }
        old.gets.clear();
        ctx.queued = old;
        *slot.charged.get() = std::mem::take(&mut ctx.charged);
        *slot.regs.get() = ctx.pending_regs.as_slice() as *const [Registration];
        *slot.unregs.get() = ctx.pending_unregs.as_slice() as *const [ArrayId];
        *slot.store.get() = &ctx.store as *const LocalStore;
        // Captured last: wall-clock backends read this as "compute
        // ended here" (the price stage's compute/comm split).
        *slot.arrived.get() = Instant::now();
    }
    slot.state.store(state, Ordering::Release);
}

/// How many workers published `FINISHED` at this parity.
fn count_finished(area: &ExchangeArea, parity: usize) -> usize {
    area.slots[parity].iter().filter(|s| s.state.load(Ordering::Relaxed) == STATE_FINISHED).count()
}

#[cold]
fn collective_violation(finished: usize, p: usize) -> ! {
    panic!(
        "collective violation: {} processor(s) returned while {} called sync()",
        finished,
        p - finished
    );
}

/// Serve this worker's own queued gets from the peers' published
/// (pre-put) stores. Runs between B1 and B2, where every store at
/// this parity is frozen.
fn serve_own_gets(ctx: &mut Ctx, area: &ExchangeArea, parity: usize) {
    let p = area.p;
    // SAFETY: our own slot's ops are ours to read; peers' store
    // pointers are valid and frozen until B2 (module doc).
    let my_ops = unsafe { &*area.slots[parity][ctx.proc].ops.get() };
    for op in &my_ops.gets {
        let len = ctx.store.info(op.array).len;
        let mut out = ctx.raw_pool.pop().unwrap_or_default();
        out.clear();
        out.reserve(op.len);
        for_each_owner_run(Layout::Block, op.array, len, p, op.start, op.len, |owner, s, l| {
            // SAFETY: see above — frozen peer store, valid until B2.
            let peer = unsafe { &*(*area.slots[parity][owner].store.get()) };
            let base = block_range(len, p, owner).start;
            let seg = peer.segment(op.array);
            out.extend_from_slice(&seg[s - base..s - base + l]);
        });
        ctx.tickets.fulfill(op.ticket, out);
    }
}

/// After B2: apply every put that lands in this worker's block (in
/// processor-then-issue order, exactly the driver's deterministic
/// resolution), then install newly registered arrays zero-initialized
/// and retire unregistered ones.
fn apply_exchange(ctx: &mut Ctx, area: &ExchangeArea, parity: usize) {
    let p = area.p;
    let me = ctx.proc;
    for src in 0..p {
        // SAFETY: phase-k ops stay frozen until their owner
        // republishes at k+2, which the barrier structure forbids
        // before the leader records k (module doc).
        let src_ops = unsafe { &*area.slots[parity][src].ops.get() };
        for op in &src_ops.puts {
            let len = ctx.store.info(op.array).len;
            let base = block_range(len, p, me).start;
            let seg = ctx.store.segment_mut(op.array);
            let mut off = 0usize;
            for_each_owner_run(
                Layout::Block,
                op.array,
                len,
                p,
                op.start,
                op.data.len(),
                |owner, s, l| {
                    if owner == me {
                        seg[s - base..s - base + l].copy_from_slice(&op.data[off..off + l]);
                    }
                    off += l;
                },
            );
        }
    }
    let mut regs = std::mem::take(&mut ctx.pending_regs);
    let first_new = ctx.next_array_id - regs.len() as u32;
    for (k, reg) in regs.drain(..).enumerate() {
        let id = ArrayId(first_new + k as u32);
        let seg_len = block_range(reg.len, p, me).len();
        ctx.store.install(
            ArrayInfo {
                id,
                name: reg.name,
                len: reg.len,
                elem_bytes: reg.elem_bytes,
                layout: reg.layout,
            },
            vec![0u64; seg_len],
        );
    }
    ctx.pending_regs = regs;
    let mut unregs = std::mem::take(&mut ctx.pending_unregs);
    for id in unregs.drain(..) {
        ctx.store.remove(id);
    }
    ctx.pending_unregs = unregs;
}

/// Worker 0, between B1 and B2: run the driver's plan stage over the
/// published slots (collective validation, id assignment, metering).
fn leader_plan(area: &ExchangeArea, parity: usize) {
    // SAFETY: worker 0 is the only accessor of the leader state
    // during the run.
    let leader = unsafe { &mut *area.leader.get() };
    let plan = leader.driver.plan_stage(&area.slots[parity]);
    leader.plan = Some(plan);
}

/// Worker 0, after B2: price and record the phase (overlapping the
/// peers' next compute), then retire the plan's metadata changes.
fn leader_finish(area: &ExchangeArea, parity: usize) {
    // SAFETY: as in `leader_plan`.
    let leader = unsafe { &mut *area.leader.get() };
    let plan = leader.plan.take().expect("leader plan missing at phase end");
    let timing = leader.driver.price_stage(&area.slots[parity], leader.timer.as_mut());
    let faults = leader.timer.fault_counts();
    let bank_wait = leader.timer.bank_wait();
    let link = (leader.timer.link_wait(), leader.timer.link_util());
    let record = leader.driver.record_stage(&plan, timing, faults, bank_wait, link);
    leader.records.push(record);
    leader.driver.finish_phase_meta(&plan);
}

/// One SPMD `sync()`: the publish / B1 / plan+serve / B2 / apply
/// pipeline described on the module.
///
/// When span capture is on (`ctx.spmd_obs`), each stage boundary is
/// marked into the worker's lane buffer: compute (ending at publish),
/// the B1 wait, the leader's plan, serving gets, the B2 wait,
/// applying puts, and the leader's price/record tail. Marks append to
/// a local `Vec` — nothing is flushed (or locked) until the exit
/// epilogue, after all measurement.
pub(crate) fn sync_phase(ctx: &mut Ctx) {
    let area = area_of(ctx);
    let parity = (ctx.phase & 1) as usize;
    // Taken (not borrowed) so marking cannot alias the &mut ctx the
    // pipeline stages need; restored before returning.
    let mut obs = ctx.spmd_obs.take();
    let (phase, lane) = (ctx.phase, ctx.proc as u32);
    publish(ctx, area, parity, STATE_SYNCED);
    if let Some(o) = obs.as_deref_mut() {
        o.mark(SpanKind::Compute, phase, lane);
    }
    if area.barrier.wait() {
        aborted();
    }
    if let Some(o) = obs.as_deref_mut() {
        o.mark(SpanKind::BarrierWait, phase, lane);
    }
    let finished = count_finished(area, parity);
    if finished > 0 {
        collective_violation(finished, area.p);
    }
    if ctx.proc == 0 {
        leader_plan(area, parity);
        if let Some(o) = obs.as_deref_mut() {
            o.mark(SpanKind::LeaderPlan, phase, lane);
        }
    }
    serve_own_gets(ctx, area, parity);
    if let Some(o) = obs.as_deref_mut() {
        o.mark(SpanKind::ServeGets, phase, lane);
    }
    if area.barrier.wait() {
        aborted();
    }
    if let Some(o) = obs.as_deref_mut() {
        o.mark(SpanKind::BarrierWait, phase, lane);
    }
    apply_exchange(ctx, area, parity);
    if let Some(o) = obs.as_deref_mut() {
        o.mark(SpanKind::ApplyPuts, phase, lane);
    }
    if ctx.proc == 0 {
        leader_finish(area, parity);
        if let Some(o) = obs.as_deref_mut() {
            o.mark(SpanKind::LeaderPrice, phase, lane);
        }
    }
    ctx.spmd_obs = obs;
    ctx.phase += 1;
}

/// SPMD teardown: publish `FINISHED` and rendezvous one last time so
/// a mismatched `sync()` elsewhere is diagnosed as a collective
/// violation (every worker must return together). With capture on,
/// the final compute leg and rendezvous wait are marked, then the
/// worker's whole span buffer is flushed — every phase has been
/// priced by now, so recorder locking cannot perturb measurement.
pub(crate) fn epilogue(ctx: &mut Ctx) {
    let area = area_of(ctx);
    let parity = (ctx.phase & 1) as usize;
    let mut obs = ctx.spmd_obs.take();
    let (phase, lane) = (ctx.phase, ctx.proc as u32);
    publish(ctx, area, parity, STATE_FINISHED);
    if let Some(o) = obs.as_deref_mut() {
        o.mark(SpanKind::Compute, phase, lane);
    }
    if area.barrier.wait() {
        aborted();
    }
    let finished = count_finished(area, parity);
    if finished < area.p {
        collective_violation(finished, area.p);
    }
    if let Some(mut o) = obs {
        o.mark(SpanKind::BarrierWait, phase, lane);
        o.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_barrier_synchronizes_and_reuses() {
        let barrier = SpinBarrier::new(4, false);
        let counter = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for round in 1..=3 {
                        counter.fetch_add(1, Ordering::SeqCst);
                        assert!(!barrier.wait());
                        assert_eq!(counter.load(Ordering::SeqCst), 4 * round);
                        assert!(!barrier.wait());
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn poisoned_barrier_releases_waiters() {
        let barrier = SpinBarrier::new(2, false);
        crossbeam::thread::scope(|scope| {
            let waiter = scope.spawn(|_| barrier.wait());
            barrier.poison();
            assert!(waiter.join().unwrap(), "poison must release the waiter");
        })
        .unwrap();
        assert!(barrier.wait(), "poisoned barriers release immediately");
    }

    #[test]
    fn tracked_barrier_counts_backoff_escalations() {
        // Untracked barriers never count, whatever the contention.
        let quiet = SpinBarrier::new(2, false);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                std::thread::sleep(Duration::from_millis(5));
                quiet.wait()
            });
            quiet.wait();
        })
        .unwrap();
        assert_eq!(quiet.transitions(), (0, 0));
        // A tracked waiter stuck for milliseconds escalates past the
        // 64-spin threshold and records its deepest backoff state.
        let tracked = SpinBarrier::new(2, true);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                std::thread::sleep(Duration::from_millis(5));
                tracked.wait()
            });
            tracked.wait();
        })
        .unwrap();
        let (yields, sleeps) = tracked.transitions();
        assert!(yields + sleeps >= 1, "a millisecond wait must escalate: {yields}/{sleeps}");
    }
}
